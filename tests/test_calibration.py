"""The online calibration loop (trace → cost model) and its bugfix sweep.

Covers the :mod:`repro.learn.calibration` pieces (bounded corpus, drift
tracking, refit triggers), the cost-pipeline bugfixes that ride along
(no-op cost publications, strict ``params_from_json`` validation,
calibration hygiene for sniffed/fault-injected runs), the end-to-end
self-tuning path on both job-server backends, the beam-search
enumeration fallback for very wide plans, and the adaptive
stage-parallelism default.
"""

import json
import math
import threading
import time
from types import SimpleNamespace

import pytest
from conftest import wordcount

from repro import RheemContext
from repro.api import RheemService
from repro.core.cost import OperatorCostParams
from repro.core.executor import Sniffer
from repro.core.faults import FaultInjector
from repro.core.monitor import OperatorObservation, StageObservation
from repro.learn import (
    CalibrationCorpus,
    CostCalibrator,
    observation_from_json,
    observation_to_json,
    params_from_json,
    predict_stage_with_defaults,
)
from repro.server import JobServer, make_wsgi_app
from repro.simulation import VirtualCluster
from repro.trace import MetricsRegistry

CORPUS_PATH = "hdfs://cal/corpus.txt"

#: The optimizer's belief that pystreams is free — the mis-costing the
#: calibration loop must discover and repair from committed traces.
MISCOSTED = {f"pystreams.{kind}": OperatorCostParams(0.0, 0.0, 0.0)
             for kind in ("source", "flatmap", "map", "reduceby", "sink")}

WORDCOUNT_DOC = {
    "operators": [
        {"name": "lines", "kind": "textfile_source", "path": CORPUS_PATH},
        {"name": "words", "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs", "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
    ],
    "sink": {"name": "counts"},
}


def _miscosted_ctx():
    """A context whose optimizer wrongly believes pystreams is free.

    Module-level and argument-free on purpose: the process-backend job
    server pickles it into worker shards as the context factory.  The
    workload is large enough (7.5M simulated source records) that the
    truth strongly prefers a distributed platform; result reuse is off so
    identical resubmissions re-execute and keep producing observations.
    """
    ctx = RheemContext(cost_params=dict(MISCOSTED),
                       config={"result_reuse": False})
    ctx.vfs.write(CORPUS_PATH, ["a b c d"] * 500, sim_factor=15_000.0)
    return ctx


def _obs(stage_id="s1", platform="pystreams", duration=2.0, known=0.0,
         ops=(("map", 1e6, 1e6),), vectorize=False):
    return StageObservation(
        stage_id, platform, duration, known,
        [OperatorObservation(platform, kind, 1.0, cin, cout)
         for kind, cin, cout in ops],
        vectorize=vectorize)


def _wait_for_refit(server, minimum=1, timeout=30.0):
    """Refits run on worker threads after the response is published."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.snapshot()["calibration"]["refits"] >= minimum:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"no refit after {timeout}s: {server.snapshot()['calibration']}")


# =========================================================== wire format
class TestObservationWire:
    def test_roundtrip(self):
        obs = _obs(duration=3.5, known=0.25,
                   ops=(("map", 10.0, 20.0), ("filter", 20.0, 5.0)),
                   vectorize=True)
        doc = observation_to_json(obs)
        json.dumps(doc)  # must be JSON-able as-is (shard pipe payload)
        back = observation_from_json(doc)
        assert back == obs

    def test_vectorize_defaults_false_for_old_payloads(self):
        doc = observation_to_json(_obs())
        del doc["vectorize"]
        assert observation_from_json(doc).vectorize is False


# ================================================================ corpus
class TestCalibrationCorpus:
    def test_bounded_per_bucket(self):
        corpus = CalibrationCorpus(per_bucket=4)
        for i in range(20):
            assert corpus.add(_obs(stage_id=f"s{i}"))
        assert len(corpus) == 4  # same bucket: bounded, newest retained
        assert corpus.bucket_count == 1

    def test_hot_bucket_cannot_evict_rare_regimes(self):
        corpus = CalibrationCorpus(per_bucket=4)
        corpus.add(_obs(platform="sparklite"))
        for i in range(50):
            corpus.add(_obs(stage_id=f"hot{i}", platform="pystreams"))
        platforms = {o.platform for o in corpus.samples()}
        assert platforms == {"pystreams", "sparklite"}

    def test_conversion_only_stages_dropped(self):
        corpus = CalibrationCorpus()
        assert corpus.add(StageObservation("conv", "sparklite",
                                           2.0, 2.0, [])) is False
        assert len(corpus) == 0

    def test_vectorize_is_part_of_the_key_and_filterable(self):
        corpus = CalibrationCorpus()
        corpus.add(_obs(stage_id="plain", vectorize=False))
        corpus.add(_obs(stage_id="batch", vectorize=True))
        assert corpus.bucket_count == 2
        assert [o.stage_id for o in corpus.samples(vectorize=False)] == \
            ["plain"]
        assert [o.stage_id for o in corpus.samples(vectorize=True)] == \
            ["batch"]

    def test_per_bucket_validated(self):
        with pytest.raises(ValueError):
            CalibrationCorpus(per_bucket=0)


# ============================================================ calibrator
class TestCostCalibrator:
    def _calibrator(self, publishes, **kwargs):
        kwargs.setdefault("min_samples", 3)
        kwargs.setdefault("population_size", 8)
        kwargs.setdefault("generations", 4)
        return CostCalibrator(VirtualCluster(), publishes.append, **kwargs)

    def test_sample_count_trigger_fires_and_publishes(self):
        publishes = []
        cal = self._calibrator(publishes)
        assert cal.observe([_obs(stage_id="a"), _obs(stage_id="b")]) is False
        assert publishes == []
        assert cal.observe([_obs(stage_id="c")]) is True
        assert len(publishes) == 1
        assert "pystreams.map" in publishes[0]
        stats = cal.stats()
        assert stats["refits"] == 1 and stats["pending"] == 0

    def test_drift_trigger_fires_before_sample_count(self):
        publishes = []
        # Predictions are wildly off (duration 100 vs ~1 predicted), so
        # the drift EWMA crosses 0.35 after two samples.
        cal = self._calibrator(publishes, min_samples=100,
                               drift_threshold=0.35, drift_min_samples=2)
        refit = False
        for i in range(4):
            refit = refit or cal.observe(
                [_obs(stage_id=f"s{i}", duration=100.0)])
        assert refit and len(publishes) == 1

    def test_merge_keeps_unobserved_prior_keys(self):
        publishes = []
        prior = {"sparklite.join": OperatorCostParams(3.0, 1.0, 0.2)}
        cal = self._calibrator(publishes, initial_params=prior, min_samples=1)
        assert cal.observe([_obs()]) is True
        merged = publishes[0]
        assert merged["sparklite.join"] == prior["sparklite.join"]
        assert "pystreams.map" in merged

    def test_refit_reduces_drift_gauge(self):
        registry = MetricsRegistry()
        publishes = []
        cal = self._calibrator(publishes, min_samples=4, metrics=registry,
                               population_size=16, generations=12)
        cal.observe([_obs(stage_id=f"s{i}", duration=50.0)
                     for i in range(3)])
        drift_before = registry.snapshot()["gauges"]["calibration.drift"]
        cal.observe([_obs(stage_id="s3", duration=50.0)])
        snap = registry.snapshot()
        assert snap["counters"]["calibration.refits"] == 1
        assert snap["counters"]["calibration.samples"] == 4
        assert snap["gauges"]["calibration.drift"] < drift_before
        assert snap["histograms"]["calibration.refit_seconds"]["count"] == 1

    def test_observe_is_safe_under_concurrency(self):
        publishes = []
        cal = self._calibrator(publishes, min_samples=8)
        threads = [threading.Thread(target=lambda k=k: cal.observe(
            [_obs(stage_id=f"t{k}-{i}") for i in range(4)]))
            for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cal.stats()["corpus_size"] >= 1
        assert publishes  # at least one refit fired across the threads

    def test_predict_with_defaults_fills_missing_keys(self):
        record = _obs(duration=0.0, known=0.5)
        # predict_stage would skip the missing key entirely; the drift
        # path must fall back to the engineering prior instead.
        assert predict_stage_with_defaults(
            record, {}, VirtualCluster()) == pytest.approx(1.5)


# ===================================== satellite: poisoned-fit hygiene
class TestRegimeHygiene:
    """A calibrator fits exactly one vectorize regime: blending the
    per-record and batch cost regimes poisons both fits."""

    def test_other_regime_is_dropped_not_fitted(self):
        registry = MetricsRegistry()
        publishes = []
        cal = CostCalibrator(VirtualCluster(), publishes.append,
                             vectorize=False, min_samples=3,
                             population_size=8, generations=4,
                             metrics=registry)
        # Poison: batch-mode samples claiming the same work is 100x
        # cheaper.  They must not reach the corpus or the fit.
        poison = [_obs(stage_id=f"p{i}", duration=0.02, vectorize=True)
                  for i in range(10)]
        clean = [_obs(stage_id=f"c{i}", duration=2.0) for i in range(3)]
        assert cal.observe(poison) is False
        assert cal.stats()["corpus_size"] == 0  # nothing ingested
        assert cal.observe(clean) is True
        snap = registry.snapshot()
        assert snap["counters"]["calibration.skipped_regime"] == 10
        assert snap["counters"]["calibration.samples"] == 3
        # The fit saw only the clean per-record samples: its prediction
        # for a clean stage is close to 2s, nowhere near the poison.
        predicted = predict_stage_with_defaults(
            clean[0], publishes[0], VirtualCluster())
        assert predicted == pytest.approx(2.0, rel=0.5)

    def test_vectorized_calibrator_keeps_only_its_regime(self):
        cal = CostCalibrator(VirtualCluster(), lambda p: None,
                             vectorize=True, min_samples=100)
        cal.observe([_obs(stage_id="v", vectorize=True), _obs(stage_id="p")])
        assert [o.stage_id for o in cal.corpus.samples()] == ["v"]


# ============================== satellite: executor calibration gating
class TestExecutionHygiene:
    """Sniffer and fault-injection runs must never teach the cost model
    (they measure perturbed executions, not production truth)."""

    def _corpus(self, ctx):
        ctx.vfs.write(CORPUS_PATH, ["to be or not to be"] * 40,
                      sim_factor=1_000.0)
        return CORPUS_PATH

    def test_clean_run_is_calibration_ok(self, ctx):
        result = ctx.execute(wordcount(ctx, self._corpus(ctx)).to_plan())
        assert result.calibration_ok is True

    def test_sniffed_run_is_not_calibration_ok(self, ctx):
        dq = wordcount(ctx, self._corpus(ctx))
        flatmap_op = dq.op.inputs[0].op.inputs[0].op
        result = dq.execute(sniffers=[Sniffer(flatmap_op.id,
                                              lambda _: None)])
        assert result.calibration_ok is False

    def test_fault_injected_run_is_not_calibration_ok(self, ctx):
        plan = wordcount(ctx, self._corpus(ctx)).to_plan()
        exec_plan, __ = ctx.optimize(plan)
        stage = exec_plan.build_stages(break_after=set())[0].id
        result = ctx.execute(wordcount(ctx, self._corpus(ctx)).to_plan(),
                             fault_injector=FaultInjector(
                                 failures={stage: 1}),
                             max_stage_retries=2)
        assert result.calibration_ok is False

    def test_service_attaches_observations_only_when_asked(self, ctx):
        self._corpus(ctx)
        service = RheemService(ctx)
        plain = service.submit(WORDCOUNT_DOC)
        assert "calibration_observations" not in plain
        observed = service.submit(WORDCOUNT_DOC, observations=True)
        docs = observed["calibration_observations"]
        assert docs and all("duration_s" in d for d in docs)
        json.dumps(docs)  # pipe-safe

    def test_observations_tagged_with_vectorize_mode(self):
        ctx = RheemContext(config={"vectorize": True})
        self._corpus(ctx)
        result = ctx.execute(wordcount(ctx, CORPUS_PATH).to_plan())
        assert result.monitor.stage_observations
        assert all(o.vectorize for o in result.monitor.stage_observations)


# ================================ satellite: no-op publish regression
class TestNoOpPublish:
    """Republishing the already-current parameters (a convergent refit)
    must not bump the cost-model version or flush the warm caches."""

    def _warm(self, ctx):
        ctx.vfs.write(CORPUS_PATH, ["to be or not to be"] * 40,
                      sim_factor=1_000.0)
        plan = wordcount(ctx, CORPUS_PATH).to_plan()
        ctx.execute(plan)
        ctx.execute(wordcount(ctx, CORPUS_PATH).to_plan())

    def test_equal_publish_is_version_stable(self, ctx):
        params = {"pystreams.map": OperatorCostParams(2.0, 0.0, 0.1)}
        ctx.publish_cost_params(params)
        version = ctx.cost_model.version
        ctx.publish_cost_params(dict(params))  # equal, distinct dict
        assert ctx.cost_model.version == version
        ctx.publish_cost_params(
            {"pystreams.map": OperatorCostParams(2.5, 0.0, 0.1)})
        assert ctx.cost_model.version == version + 1

    def test_noop_publish_preserves_warm_cache_hits(self, ctx):
        self._warm(ctx)
        counters = ctx.metrics.snapshot()["counters"]
        assert counters.get("intermediate.hits", 0) >= 1
        plan_stats = dict(ctx.plan_cache.stats)
        store_len = len(ctx.result_store)
        ctx.publish_cost_params(ctx.cost_params_snapshot())
        # Nothing was flushed...
        assert len(ctx.result_store) == store_len
        assert ctx.result_store.stats["flushes"] == 0
        assert ctx.plan_cache.stats == plan_stats
        # ... so the next resubmission still hits the warm stores.
        before = ctx.metrics.snapshot()["counters"]
        ctx.execute(wordcount(ctx, CORPUS_PATH).to_plan())
        after = ctx.metrics.snapshot()["counters"]
        assert after.get("intermediate.hits", 0) > \
            before.get("intermediate.hits", 0)

    def test_real_publish_still_flushes(self, ctx):
        self._warm(ctx)
        ctx.publish_cost_params(
            {"pystreams.map": OperatorCostParams(2.0, 0.0, 0.1)})
        assert len(ctx.result_store) == 0
        assert ctx.result_store.stats["flushes"] == 1


# ============================= satellite: params_from_json validation
class TestParamsValidation:
    def _doc(self, **fields):
        entry = {"alpha": 1.0, "beta": 0.0, "delta": 0.0}
        entry.update(fields)
        return json.dumps({"pystreams.map": entry})

    def test_valid_document_accepted(self):
        params = params_from_json(self._doc(alpha=1.5, beta=0.25))
        assert params["pystreams.map"].alpha == 1.5

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_values_rejected_by_key(self, bad):
        doc = self._doc()
        doc = doc.replace('"alpha": 1.0', f'"alpha": {bad!r}'.replace(
            "nan", "NaN").replace("inf", "Infinity"))
        with pytest.raises(ValueError, match=r"pystreams\.map"):
            params_from_json(doc)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="beta"):
            params_from_json(self._doc(beta=-0.5))

    def test_non_numeric_and_bool_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            params_from_json(self._doc(alpha="fast"))
        with pytest.raises(ValueError, match="delta"):
            params_from_json(self._doc(delta=True))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="beta"):
            params_from_json(json.dumps(
                {"pystreams.map": {"alpha": 1.0, "delta": 0.0}}))

    def test_non_mapping_shapes_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            params_from_json("[1, 2]")
        with pytest.raises(ValueError, match="pystreams.map"):
            params_from_json('{"pystreams.map": [1.0, 0.0, 0.0]}')
        with pytest.raises(ValueError):
            params_from_json("{not json")


# =========================================== end-to-end: thread backend
class TestServerCalibrationThread:
    def test_refit_repairs_a_miscosted_workload(self):
        calibration = {"min_samples": 2, "population_size": 16,
                       "generations": 12}
        with JobServer(_miscosted_ctx(), workers=2, calibrate=True,
                       calibration=calibration) as server:
            first = server.submit_sync(WORDCOUNT_DOC, timeout=60)
            assert first["status"] == "ok"
            assert first["platforms"] == ["pystreams"]  # the lie in action
            second = server.submit_sync(WORDCOUNT_DOC, timeout=60)
            assert second["status"] == "ok"
            _wait_for_refit(server)
            healed = server.submit_sync(WORDCOUNT_DOC, timeout=60)
            assert healed["status"] == "ok"
            # The refit repriced pystreams from committed traces: the
            # optimizer now routes to a distributed platform and the
            # simulated runtime drops by far more than the 1.5x bar.
            assert set(healed["platforms"]) & {"sparklite", "flinklite"}
            assert first["runtime"] / healed["runtime"] >= 1.5
            snap = server.snapshot()["calibration"]
            assert snap["refits"] >= 1 and snap["corpus_size"] >= 1
        counters = server.metrics_snapshot()["counters"]
        assert counters["calibration.refits"] >= 1
        assert counters["calibration.samples"] >= 2
        assert "calibration.drift" in server.metrics_snapshot()["gauges"]

    def test_metrics_endpoint_exposes_calibration(self):
        calibration = {"min_samples": 1, "population_size": 8,
                       "generations": 4}
        with JobServer(_miscosted_ctx(), workers=1, calibrate=True,
                       calibration=calibration) as server:
            app = make_wsgi_app(server)
            assert server.submit_sync(WORDCOUNT_DOC,
                                      timeout=60)["status"] == "ok"
            _wait_for_refit(server)
            captured = {}

            def start_response(status, headers):
                captured["status"] = status

            chunks = app({"REQUEST_METHOD": "GET", "PATH_INFO": "/metrics",
                          "QUERY_STRING": ""}, start_response)
            payload = json.loads(b"".join(chunks))
            assert captured["status"] == "200 OK"
            assert payload["counters"]["calibration.refits"] >= 1
            assert math.isfinite(payload["gauges"]["calibration.drift"])

    def test_server_without_calibrate_has_no_calibrator(self):
        with JobServer(RheemContext(), workers=1) as server:
            assert server.calibrator is None
            assert "calibration" not in server.snapshot()


# ========================================== end-to-end: process backend
class TestServerCalibrationProcess:
    def test_refit_broadcast_heals_every_shard(self):
        calibration = {"min_samples": 2, "population_size": 16,
                       "generations": 12,
                       "initial_params": dict(MISCOSTED)}
        server = JobServer(context_factory=_miscosted_ctx, workers=2,
                          backend="process", tracing=False, calibrate=True,
                          calibration=calibration)
        try:
            first = server.submit_sync(WORDCOUNT_DOC, timeout=60)
            assert first["status"] == "ok"
            assert first["platforms"] == ["pystreams"]
            assert server.submit_sync(WORDCOUNT_DOC,
                                      timeout=60)["status"] == "ok"
            _wait_for_refit(server)
            # The publish was broadcast: EVERY shard replans away from
            # the mis-priced platform, not just the sticky home shard.
            healed_everywhere = server.warm(WORDCOUNT_DOC)
            assert len(healed_everywhere) == 2
            for response in healed_everywhere:
                assert response["status"] == "ok"
                assert set(response["platforms"]) & \
                    {"sparklite", "flinklite"}
                assert first["runtime"] / response["runtime"] >= 1.5
            counters = server.metrics_snapshot()["counters"]
            assert counters["calibration.refits"] >= 1
            assert counters["calibration.samples"] >= 2
        finally:
            server.shutdown()


# ======================================================= beam enumeration
def _chain_plan(ctx, n, path="hdfs://beam/x.txt"):
    dq = ctx.read_text_file(path).map(lambda line: line, name="m0")
    for i in range(1, n):
        dq = dq.map(lambda x: x, name=f"m{i}")
    return dq.to_plan()


class TestBeamEnumeration:
    @pytest.fixture()
    def beam_ctx(self):
        ctx = RheemContext()
        ctx.vfs.write("hdfs://beam/x.txt", ["a"] * 100, sim_factor=2_000.0)
        return ctx

    def test_small_plans_are_bit_for_bit_unaffected(self, beam_ctx):
        plan = _chain_plan(beam_ctx, 12)
        default = beam_ctx.optimizer()
        best_default, __ = default.pick_best(plan)
        lossless = beam_ctx.optimizer()
        lossless.beam_threshold = None
        best_lossless, __ = lossless.pick_best(plan)
        assert best_default.cost.geometric_mean == \
            best_lossless.cost.geometric_mean
        assert default.stats == lossless.stats
        assert default.stats["plans_beam_dropped"] == 0

    def test_wide_plan_engages_the_beam_and_stays_fast(self, beam_ctx):
        plan = _chain_plan(beam_ctx, 100)
        optimizer = beam_ctx.optimizer()
        start = time.perf_counter()
        best, __ = optimizer.pick_best(plan)
        elapsed = time.perf_counter() - start
        assert optimizer.stats["plans_beam_dropped"] > 0
        assert elapsed < 5.0
        assert best.cost.geometric_mean > 0

    def test_beam_is_deterministic(self, beam_ctx):
        plan = _chain_plan(beam_ctx, 60)
        a = beam_ctx.optimizer()
        best_a, __ = a.pick_best(plan)
        b = beam_ctx.optimizer()
        best_b, __ = b.pick_best(plan)
        assert best_a.cost.geometric_mean == best_b.cost.geometric_mean
        assert a.stats == b.stats

    def test_beam_matches_lossless_optimum_mid_size(self, beam_ctx):
        # Just above the threshold the beam still finds the lossless
        # optimum on chain topologies (signature diversity is what the
        # beam truncates; a chain's optimum survives easily).
        plan = _chain_plan(beam_ctx, 60)
        beamed = beam_ctx.optimizer()
        best_beam, __ = beamed.pick_best(plan)
        lossless = beam_ctx.optimizer()
        lossless.beam_threshold = None
        best_full, __ = lossless.pick_best(plan)
        assert beamed.stats["plans_beam_dropped"] > 0
        assert best_beam.cost.geometric_mean == pytest.approx(
            best_full.cost.geometric_mean)


# =========================================== adaptive stage parallelism
class TestAdaptiveStageParallelism:
    def _stages(self, edges):
        """Stage stubs from ``{id: [deps]}`` in insertion order."""
        return [SimpleNamespace(id=sid, dependencies=deps)
                for sid, deps in edges.items()]

    def test_chain_width_is_one(self, ctx):
        from repro.core.executor import Executor

        stages = self._stages({"a": [], "b": ["a"], "c": ["b"]})
        assert Executor._dag_width(stages) == 1

    def test_fanout_width_counts_ready_stages(self):
        from repro.core.executor import Executor

        stages = self._stages({"a": [], "b": ["a"], "c": ["a"], "d": ["a"],
                               "e": ["b", "c", "d"]})
        assert Executor._dag_width(stages) == 3

    def test_adaptive_default_caps_at_ceiling(self, ctx):
        executor = ctx.executor()
        stages = self._stages(
            {"src": []} | {f"b{i}": ["src"] for i in range(20)})
        assert executor._stage_parallelism(None, stages) == \
            executor.ADAPTIVE_LANE_CEILING

    def test_explicit_config_wins_over_adaptive(self):
        ctx = RheemContext(config={"stage_parallelism": 3})
        executor = ctx.executor()
        stages = self._stages({"a": [], "b": [], "c": [], "d": [], "e": []})
        assert executor._stage_parallelism(None, stages) == 3

    def test_server_thread_budget_still_caps_adaptive(self):
        ctx = RheemContext(config={"stage_parallelism_cap": 2})
        executor = ctx.executor()
        stages = self._stages({f"s{i}": [] for i in range(6)})
        assert executor._stage_parallelism(None, stages) == 2

    def test_parallel_results_match_serial(self, ctx):
        # The adaptive default must stay invisible in results: a fan-out
        # plan under adaptive lanes is bit-for-bit the serial outcome.
        ctx.vfs.write("hdfs://par/x.txt", [f"{i}" for i in range(40)],
                      sim_factor=500.0)
        left = ctx.read_text_file("hdfs://par/x.txt").map(int)
        right = ctx.read_text_file("hdfs://par/x.txt").map(
            lambda s: int(s) * 2)
        plan = left.union(right).distinct().sort().to_plan()
        adaptive = ctx.execute(plan)
        serial_ctx = RheemContext(config={"stage_parallelism": 1})
        serial_ctx.vfs.write("hdfs://par/x.txt",
                             [f"{i}" for i in range(40)], sim_factor=500.0)
        left2 = serial_ctx.read_text_file("hdfs://par/x.txt").map(int)
        right2 = serial_ctx.read_text_file("hdfs://par/x.txt").map(
            lambda s: int(s) * 2)
        serial = serial_ctx.execute(
            left2.union(right2).distinct().sort().to_plan())
        assert adaptive.output == serial.output
        assert adaptive.runtime == serial.runtime
