"""Additional studio tests: EXPLAIN over loops and mixed plans."""

import pytest

from repro import RheemContext
from repro.studio import explain, render_ascii


class TestExplainLoops:
    def _sgd_plan(self, ctx):
        ctx.vfs.write("hdfs://ex/pts", ["1.0,0.5"] * 50, sim_factor=1e5,
                      bytes_per_record=50)
        points = (ctx.read_text_file("hdfs://ex/pts")
                  .map(lambda l: tuple(map(float, l.split(","))),
                       name="parse").cache())
        weights = ctx.load_collection([(0.0,)], bytes_per_record=16)
        out = weights.repeat(
            5, lambda w, inv: inv.sample(size=4, method="random_jump",
                                         broadcasts=[w])
            .reduce(lambda a, b: a),
            invariants=[points])
        return out.to_plan()

    def test_explain_describes_loops(self, ctx):
        text = explain(ctx, self._sgd_plan(ctx))
        assert "loop x5" in text
        assert "estimated cost" in text

    def test_explain_honours_allowed_platforms(self, ctx):
        text = explain(ctx, self._sgd_plan(ctx),
                       allowed_platforms={"pystreams", "driver"})
        assert "pystreams" in text
        assert "flinklite" not in text and "sparklite" not in text

    def test_ascii_lists_loop_body(self, ctx):
        text = render_ascii(self._sgd_plan(ctx))
        assert "[body]" in text
        assert "sample" in text

    def test_explain_is_side_effect_free(self, ctx):
        plan = self._sgd_plan(ctx)
        explain(ctx, plan)
        # The plan still runs normally afterwards.
        result = ctx.execute(plan)
        assert len(result.output) == 1
