"""Regression tests for crash-retry state leaks in the executor.

Before the buffered-commit fix, a crashed stage attempt had already
written its outputs into the channel environment, populated the shared
conversion cache, appended to ``completed_logical``, delivered sniffer
payloads and charged ``cluster.check_memory`` by the time the fault
injector was consulted.  These tests pin the post-fix semantics: a failed
attempt leaves nothing behind except its critical-path charge.
"""

import pytest

from repro import RheemContext
from repro.core.executor import Sniffer
from repro.core.faults import FaultInjector
from conftest import wordcount


def _corpus(ctx):
    ctx.vfs.write("hdfs://rs/lines.txt", ["a b", "b c", "c"],
                  sim_factor=1000.0)
    return wordcount(ctx, "hdfs://rs/lines.txt")


def _compiled(ctx, dq):
    """(execution plan, estimates) for a fluent pipeline."""
    plan = dq.to_plan()
    optimizer = ctx.optimizer()
    best, cards = optimizer.pick_best(plan)
    return optimizer._build_execution_plan(plan, best), cards


def _first_stage_id(breaks=frozenset()):
    probe = RheemContext()
    exec_plan, __ = _compiled(probe, _corpus(probe))
    return exec_plan.build_stages(break_after=set(breaks))[0].id


class TestBufferedCommit:
    def test_sniffers_stay_silent_on_crashed_attempts(self):
        """A sniffer observes each output exactly once, not once per
        attempt — crashed attempts never produced observable data."""
        stage_id = _first_stage_id()
        ctx = RheemContext()
        dq = _corpus(ctx)
        # reduceby <- map <- flatmap: tap the flatmap output.
        flatmap_op = dq.op.inputs[0].op.inputs[0].op
        tapped = []
        injector = FaultInjector(failures={stage_id: 2})
        result = dq.execute(
            sniffers=[Sniffer(flatmap_op.id, tapped.append)],
            fault_injector=injector, max_stage_retries=2)
        assert injector.injected == 2
        assert dict(result.output) == {"a": 1, "b": 2, "c": 2}
        assert len(tapped) == 1

    def test_memory_is_not_charged_for_crashed_attempts(self):
        """``check_memory`` runs at commit time only: a crashed attempt's
        materialized outputs never count against the platform budget."""

        def run(failures):
            ctx = RheemContext()
            dq = _corpus(ctx)
            flatmap_id = dq.op.inputs[0].op.inputs[0].op.id
            exec_plan, cards = _compiled(ctx, dq)
            stage_id = exec_plan.build_stages(
                break_after={flatmap_id})[0].id
            calls = []
            real = ctx.cluster.check_memory
            ctx.cluster.check_memory = (
                lambda platform, mb: (calls.append(platform),
                                      real(platform, mb))[1])
            injector = FaultInjector(failures={stage_id: failures})
            ctx.executor().execute(
                exec_plan, estimates=cards, fault_injector=injector,
                max_stage_retries=2, stage_breaks={flatmap_id})
            return calls

        assert run(failures=2) == run(failures=0)

    def test_checkpoint_sees_no_duplicate_monitor_state(self):
        """FaultInjector + checkpoint hook: the monitor handed to the
        checkpoint reflects committed attempts only — each stage appears
        once no matter how often it crashed first."""
        ctx = RheemContext()
        dq = _corpus(ctx)
        flatmap_id = dq.op.inputs[0].op.inputs[0].op.id
        exec_plan, cards = _compiled(ctx, dq)
        stage_id = exec_plan.build_stages(break_after={flatmap_id})[0].id
        seen = []

        def checkpoint(monitor, completed):
            seen.append(([t.stage_id for t in monitor.stage_timings],
                         set(completed)))
            return False

        injector = FaultInjector(failures={stage_id: 2})
        result = ctx.executor().execute(
            exec_plan, estimates=cards, checkpoint=checkpoint,
            fault_injector=injector, max_stage_retries=2,
            stage_breaks={flatmap_id})
        assert dict(result.output) == {"a": 1, "b": 2, "c": 2}
        assert injector.injected == 2
        assert seen, "checkpoint hook never consulted"
        timeline, completed = seen[0]
        # The retried stage committed exactly one timing and the crashed
        # attempts contributed no completed-operator ids.
        assert timeline.count(stage_id) == 1
        assert all(tid.count(".attempt") == 0 for tid in timeline)
        assert flatmap_id in completed
        # The monitor's observation log is identical to a fault-free run.
        clean_ctx = RheemContext()
        clean_dq = _corpus(clean_ctx)
        clean_flatmap_id = clean_dq.op.inputs[0].op.inputs[0].op.id
        clean_plan, clean_cards = _compiled(clean_ctx, clean_dq)
        clean = clean_ctx.executor().execute(
            clean_plan, estimates=clean_cards,
            stage_breaks={clean_flatmap_id})
        assert ([o.stage_id for o in result.monitor.stage_observations]
                == [o.stage_id for o in clean.monitor.stage_observations])

    def test_loop_driver_retry_does_not_duplicate_observations(self):
        """Retrying the driver stage that hosts a loop re-runs the whole
        loop; the monitor must keep one observation per body stage, not
        one per attempt."""

        def run(injector=None, retries=0):
            ctx = RheemContext()
            data = ctx.load_collection([1, 2]).cache()
            seed = ctx.load_collection([0])
            out = seed.repeat(2, lambda s, inv: s.map(lambda v: v + 1),
                              invariants=[data])
            result = out.execute(fault_injector=injector,
                                 max_stage_retries=retries)
            assert result.output == [2]
            return result

        import re

        def normalized(result):
            # Loop implementation ids differ between contexts; the stage
            # structure is what must match.
            return sorted(re.sub(r"\.loop\d+\.", ".loop.", o.stage_id)
                          for o in result.monitor.stage_observations)

        clean = run()
        driver_stages = {t.stage_id for t in clean.tracker.timings()
                         if ".loop" not in t.stage_id
                         and ".attempt" not in t.stage_id}
        failures = {sid: 1 for sid in driver_stages}
        faulty = run(FaultInjector(failures=failures), retries=2)
        assert normalized(faulty) == normalized(clean)


class TestRetryCostAccounting:
    def test_wasted_attempts_chain_on_the_critical_path(self):
        stage_id = _first_stage_id()
        ctx = RheemContext()
        injector = FaultInjector(failures={stage_id: 2})
        result = _corpus(ctx).execute(fault_injector=injector,
                                      max_stage_retries=2)
        timings = {t.stage_id: t for t in result.tracker.timings()}
        a0 = timings[f"{stage_id}.attempt0"]
        a1 = timings[f"{stage_id}.attempt1"]
        final = timings[stage_id]
        # The successful attempt chains after the last failure.
        assert a1.start == pytest.approx(a0.end)
        assert final.start == pytest.approx(a1.end)
        assert a0.duration > 0 and a1.duration > 0 and final.duration > 0

    def test_makespan_grows_monotonically_with_failures(self):
        stage_id = _first_stage_id()
        runtimes = []
        for failures in (0, 1, 2):
            ctx = RheemContext()
            injector = FaultInjector(failures={stage_id: failures})
            result = _corpus(ctx).execute(fault_injector=injector,
                                          max_stage_retries=2)
            runtimes.append(result.runtime)
        assert runtimes[0] < runtimes[1] < runtimes[2]

    def test_retry_metrics_count_wasted_attempts(self):
        stage_id = _first_stage_id()
        ctx = RheemContext()
        injector = FaultInjector(failures={stage_id: 2})
        _corpus(ctx).execute(fault_injector=injector, max_stage_retries=2)
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["executor.retries_wasted"] == 2
        assert counters["executor.attempts"] == \
            counters["executor.stages"] + 2

    def test_stage_wall_dwell_charged_per_attempt(self, monkeypatch):
        """``stage_wall_s`` models a stage occupying its platform for real
        wall-clock time; a crashed attempt held the platform just as long
        as a successful one, so every attempt must pay the dwell."""
        import repro.core.executor as executor_mod

        dwell_sleeps = []
        monkeypatch.setattr(
            executor_mod.time, "sleep",
            lambda seconds: dwell_sleeps.append(seconds))

        def run(failures):
            dwell_sleeps.clear()
            ctx = RheemContext()
            ctx.config["stage_wall_s"] = 0.01
            ctx.config["stage_parallelism"] = 1
            stage_id = _first_stage_id()
            injector = FaultInjector(failures={stage_id: failures})
            _corpus(ctx).execute(fault_injector=injector,
                                 max_stage_retries=2)
            counters = ctx.metrics.snapshot()["counters"]
            return len(dwell_sleeps), counters["executor.attempts"]

        clean_sleeps, clean_attempts = run(failures=0)
        faulty_sleeps, faulty_attempts = run(failures=2)
        # One dwell per attempt — including the two crashed ones.
        assert clean_sleeps == clean_attempts
        assert faulty_sleeps == faulty_attempts
        assert faulty_sleeps == clean_sleeps + 2
