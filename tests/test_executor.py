"""Tests for stage building, execution, loops, sniffers and the monitor."""

import pytest

from repro.core.executor import Sniffer
from repro.core.monitor import Monitor
from repro.core.cardinality import CardinalityEstimate
from repro.simulation.cluster import SimulatedOutOfMemory
from conftest import wordcount


class TestStageBuilding:
    def _stages(self, ctx, dq):
        plan = dq.to_plan()
        exec_plan = ctx.optimizer().optimize(plan)
        return exec_plan.build_stages()

    def test_single_platform_chain_is_one_stage(self, ctx):
        dq = (ctx.load_collection(list(range(5)))
              .map(lambda x: x + 1).filter(lambda x: x > 1))
        stages = self._stages(ctx, dq)
        real = [s for s in stages if s.platform != "driver"]
        assert len(real) == 1

    def test_stage_dependencies_point_backwards(self, ctx):
        ctx.vfs.write("hdfs://f", ["a b"] * 50, sim_factor=300_000.0)
        stages = self._stages(ctx, wordcount(ctx, "hdfs://f"))
        seen = set()
        for stage in stages:
            assert stage.dependencies <= seen
            seen.add(stage.id)

    def test_loop_gets_driver_stage(self, ctx):
        data = ctx.load_collection(list(range(10))).cache()
        seed = ctx.load_collection([0])
        dq = seed.repeat(2, lambda s, inv: inv.sample(size=1)
                         .reduce(lambda a, b: a + b), invariants=[data])
        stages = self._stages(ctx, dq)
        assert any(s.platform == "driver" for s in stages)


class TestExecution:
    def test_results_and_runtime(self, ctx):
        ctx.vfs.write("hdfs://f", ["x y", "y"], sim_factor=10.0)
        res = wordcount(ctx, "hdfs://f").execute()
        assert dict(res.output) == {"x": 1, "y": 2}
        assert res.runtime > 0
        assert res.stage_count >= 1

    def test_multi_sink_plan(self, ctx):
        from repro.core import operators as ops
        from repro.core.plan import RheemPlan
        src = ops.CollectionSource([1, 2, 3])
        double = ops.Map(lambda x: x * 2)
        double.connect(0, src)
        triple = ops.Map(lambda x: x * 3)
        triple.connect(0, src)
        s1, s2 = ops.CollectionSink(), ops.CollectionSink()
        s1.connect(0, double)
        s2.connect(0, triple)
        plan = RheemPlan([s1, s2])
        res = ctx.execute(plan)
        assert res.outputs[0] == [2, 4, 6]
        assert res.outputs[1] == [3, 6, 9]

    def test_shared_producer_computed_once(self, ctx):
        calls = []

        def probe(x):
            calls.append(x)
            return x

        shared = ctx.load_collection([1, 2]).map(probe)
        joined = shared.join(shared, lambda x: x, lambda x: x)
        out = joined.collect(allowed_platforms={"pystreams", "driver"})
        assert sorted(out) == [(1, 1), (2, 2)]
        assert len(calls) == 2  # not 4: one task feeds both join inputs

    def test_memory_cap_at_stage_boundary(self, ctx):
        # A huge collection crossing into the driver breaks pystreams' heap.
        ctx.vfs.write("hdfs://huge", ["r"] * 100, sim_factor=5_000_000.0,
                      bytes_per_record=100.0)
        dq = ctx.read_text_file("hdfs://huge")
        with pytest.raises(SimulatedOutOfMemory):
            dq.collect(allowed_platforms={"pystreams", "driver"})

    def test_overlapping_branches_take_critical_path(self, ctx):
        a = ctx.load_collection(list(range(100)), sim_factor=1e5).map(
            lambda x: x)
        b = ctx.load_collection(list(range(100)), sim_factor=1e5).map(
            lambda x: x)
        res = a.union(b).execute(allowed_platforms={"pystreams", "driver"})
        assert res.tracker.makespan <= res.tracker.busy_time


class TestLoopsAtRuntime:
    def test_repeat_runs_exact_iterations(self, ctx):
        counter = []
        data = ctx.load_collection([1]).cache()
        seed = ctx.load_collection([0])

        def body(s, inv):
            return s.map(lambda v: (counter.append(v), v + 1)[1])

        out = seed.repeat(7, body, invariants=[data])
        assert out.collect() == [7]
        assert len(counter) == 7

    def test_do_while_stops_on_condition(self, ctx):
        data = ctx.load_collection([1]).cache()
        seed = ctx.load_collection([0])
        out = seed.do_while(
            lambda values: values[0] < 4,
            lambda s, inv: s.map(lambda v: v + 1),
            invariants=[data], max_iterations=100)
        assert out.collect() == [4]

    def test_do_while_respects_max_iterations(self, ctx):
        data = ctx.load_collection([1]).cache()
        seed = ctx.load_collection([0])
        out = seed.do_while(
            lambda values: True,
            lambda s, inv: s.map(lambda v: v + 1),
            invariants=[data], max_iterations=5)
        assert out.collect() == [5]

    def test_loop_broadcast_sees_fresh_value(self, ctx):
        seen = []
        data = ctx.load_collection([10]).cache()
        seed = ctx.load_collection([0])

        def body(s, inv):
            return inv.map(lambda x, w: (seen.append(w[0]), w[0] + 1)[1],
                           broadcasts=[s])

        out = seed.repeat(3, body, invariants=[data])
        assert out.collect() == [3]
        assert seen == [0, 1, 2]


class TestSniffers:
    def test_sniffer_sees_data_and_costs_time(self, ctx):
        ctx.vfs.write("hdfs://f", ["a b b"] * 30, sim_factor=50_000.0)
        tapped = []

        def build():
            return wordcount(ctx, "hdfs://f")

        plain = build().execute(allowed_platforms={"pystreams", "driver"})
        dq = build()
        # Sniff the flatmap output (reduceby <- map <- flatmap).
        flatmap_op = dq.op.inputs[0].op.inputs[0].op
        sniffed = dq.execute(
            allowed_platforms={"pystreams", "driver"},
            sniffers=[Sniffer(flatmap_op.id, tapped.append)])
        assert tapped and len(tapped[0]) == 90
        assert sniffed.runtime > plain.runtime
        overhead = sniffed.runtime / plain.runtime - 1
        assert overhead < 1.0  # bounded exploratory overhead


class TestMonitor:
    def test_actuals_and_mismatches(self):
        monitor = Monitor(estimates={1: CardinalityEstimate(10, 20)})

        class FakeOp:
            class logical:
                id = 1
                name = "op"
        monitor.record_cardinality(FakeOp, 500.0)
        assert monitor.actuals[1] == 500.0
        assert not monitor.is_healthy()
        assert monitor.mismatches()[0].actual == 500.0

    def test_healthy_when_within_bounds(self):
        monitor = Monitor(estimates={1: CardinalityEstimate(10, 20)})

        class FakeOp:
            class logical:
                id = 1
                name = "op"
        monitor.record_cardinality(FakeOp, 15.0)
        assert monitor.is_healthy()

    def test_observations_recorded_during_execution(self, ctx):
        ctx.vfs.write("hdfs://f", ["a b"] * 10, sim_factor=100.0)
        res = wordcount(ctx, "hdfs://f").execute()
        obs = res.monitor.stage_observations
        assert obs
        kinds = {o.op_kind for rec in obs for o in rec.operators}
        assert {"flatmap", "reduceby"} <= kinds


class TestStageParallelization:
    def test_disabling_serializes_independent_stages(self, ctx):
        from repro.core.executor import Executor

        a = ctx.load_collection(list(range(200)), sim_factor=1e5).map(
            lambda x: x)
        b = ctx.load_collection(list(range(200)), sim_factor=1e5).map(
            lambda x: x)
        plan = a.union(b).to_plan()
        optimizer = ctx.optimizer(allowed_platforms={"pystreams", "driver"})
        best, cards = optimizer.pick_best(plan)

        def run(parallel):
            exec_plan = optimizer._build_execution_plan(plan, best)
            return ctx.executor().execute(exec_plan, estimates=cards,
                                          parallelize_stages=parallel)

        overlapped = run(True)
        serial = run(False)
        assert sorted(serial.output) == sorted(overlapped.output)
        assert serial.runtime >= overlapped.runtime
        # Fully serialized: makespan equals total busy time.
        assert serial.runtime == pytest.approx(serial.tracker.busy_time)


class TestMonitorReport:
    def test_report_mentions_stages_and_surprises(self, ctx):
        from repro.core.udf import Udf
        ctx.vfs.write("hdfs://rep/x", ["1"] * 50, sim_factor=1000.0)
        bad = Udf(lambda v: True, selectivity=0.001, name="surprising")
        res = (ctx.read_text_file("hdfs://rep/x")
               .map(int).filter(bad).execute())
        text = res.monitor.report()
        assert "stage timeline" in text
        assert "cardinality surprises" in text
        assert "surprising" not in text or True  # operator naming may vary


class TestConversionDeduplication:
    def test_shared_export_converted_once(self, ctx):
        # One pgres relation feeds TWO operators pinned on flinklite: the
        # pgres-export conversion must run once, not per consumer edge.
        ctx.pgres.create_table("src", ["v"], [{"v": i} for i in range(20)],
                               sim_factor=1e4)
        base = ctx.read_table("src")
        evens = base.filter(lambda r: r["v"] % 2 == 0,
                            name="evens").with_target_platform("flinklite")
        odds = base.filter(lambda r: r["v"] % 2 == 1,
                           name="odds").with_target_platform("flinklite")
        res = evens.union(odds).execute()
        exports = [e for t in res.tracker.timings()
                   for e in t.meter.events
                   if e.label.startswith("convert:pgres-export")]
        assert len(exports) == 1
        assert len(res.output) == 20
