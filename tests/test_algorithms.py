"""Property and unit tests for the shared algorithms (IEJoin, PageRank)."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.algorithms import ie_join, naive_inequality_join, pagerank_edges

OPS = ["<", "<=", ">", ">="]

rows = st.lists(
    st.tuples(st.integers(min_value=-20, max_value=20),
              st.integers(min_value=-20, max_value=20)),
    max_size=25,
)


def _conds(op1, op2=None):
    conds = [(lambda t: t[0], op1, lambda t: t[0])]
    if op2 is not None:
        conds.append((lambda t: t[1], op2, lambda t: t[1]))
    return conds


class TestIEJoin:
    @given(rows, rows, st.sampled_from(OPS))
    def test_single_condition_matches_naive(self, left, right, op):
        conds = _conds(op)
        fast = sorted(ie_join(left, right, conds))
        slow = sorted(naive_inequality_join(left, right, conds))
        assert fast == slow

    @given(rows, rows, st.sampled_from(OPS), st.sampled_from(OPS))
    def test_two_conditions_match_naive(self, left, right, op1, op2):
        conds = _conds(op1, op2)
        fast = sorted(ie_join(left, right, conds))
        slow = sorted(naive_inequality_join(left, right, conds))
        assert fast == slow

    def test_tax_style_self_join(self):
        # salary >, tax <: the paper's denial constraint.
        records = [("a", 100, 30), ("b", 200, 5), ("c", 50, 15)]
        conds = [(lambda t: t[1], ">", lambda t: t[1]),
                 (lambda t: t[2], "<", lambda t: t[2])]
        pairs = set(ie_join(records, records, conds))
        assert pairs == {(("b", 200, 5), ("a", 100, 30)),
                         (("b", 200, 5), ("c", 50, 15))}

    def test_empty_inputs(self):
        assert ie_join([], [(1, 2)], _conds("<")) == []
        assert ie_join([(1, 2)], [], _conds("<")) == []

    def test_duplicates_produce_duplicate_pairs(self):
        left = [(1, 0), (1, 0)]
        right = [(2, 0)]
        out = ie_join(left, right, _conds("<"))
        assert len(out) == 2

    def test_all_equal_keys_strict_vs_inclusive(self):
        left = [(5, 0)] * 3
        right = [(5, 0)] * 3
        assert ie_join(left, right, _conds("<")) == []
        assert len(ie_join(left, right, _conds("<="))) == 9

    def test_rejects_bad_arity_and_ops(self):
        with pytest.raises(ValueError):
            ie_join([], [], [])
        with pytest.raises(ValueError):
            ie_join([], [], _conds("<", "<") + _conds("<"))
        with pytest.raises(ValueError):
            ie_join([1], [2], [(lambda x: x, "!=", lambda x: x)])


class TestPageRank:
    def _assert_close_to_networkx(self, edges, iterations=50):
        ours = pagerank_edges(edges, iterations=iterations)
        graph = nx.DiGraph()
        graph.add_edges_from(set(edges))
        theirs = nx.pagerank(graph, alpha=0.85)
        for v, rank in ours.items():
            assert rank == pytest.approx(theirs[v], abs=5e-3)

    def test_matches_networkx_simple(self):
        self._assert_close_to_networkx([(1, 2), (2, 3), (3, 1), (1, 3)])

    def test_matches_networkx_with_dangling(self):
        self._assert_close_to_networkx([(1, 2), (1, 3), (2, 3)])  # 3 dangles

    def test_ranks_sum_to_one(self):
        ranks = pagerank_edges([(i, (i + 1) % 7) for i in range(7)])
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert pagerank_edges([]) == {}

    def test_hub_outranks_leaf(self):
        ranks = pagerank_edges([(1, 0), (2, 0), (3, 0), (0, 1)])
        assert ranks[0] > ranks[2]

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    min_size=1, max_size=30))
    def test_probability_distribution_property(self, edges):
        ranks = pagerank_edges(edges, iterations=20)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(r > 0 for r in ranks.values())
