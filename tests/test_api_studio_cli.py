"""Tests for the REST interface, the plan visualizer/EXPLAIN, the xDB SQL
front end and the CLI."""

import io
import json

import pytest

from repro import RheemContext
from repro.api import PlanDocumentError, RheemService, build_quanta, wsgi_app
from repro.apps.xdb_sql import SqlError, parse_sql, run_sql, sql_query
from repro.studio import explain, plan_to_dot, render_ascii
from conftest import wordcount

WORDCOUNT_DOC = {
    "operators": [
        {"name": "lines", "kind": "textfile_source",
         "path": "hdfs://api/x.txt"},
        {"name": "words", "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs", "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
    ],
    "sink": {"name": "counts"},
}


def _ctx_with_corpus():
    ctx = RheemContext()
    ctx.vfs.write("hdfs://api/x.txt", ["a b", "b"], sim_factor=10.0)
    return ctx


class TestJsonPlans:
    def test_document_builds_and_runs(self):
        ctx = _ctx_with_corpus()
        out = build_quanta(ctx, WORDCOUNT_DOC).collect()
        assert sorted(out) == [("a", 1), ("b", 2)]

    def test_platform_pins_use_paper_names(self):
        ctx = _ctx_with_corpus()
        doc = json.loads(json.dumps(WORDCOUNT_DOC))
        doc["operators"][1]["platform"] = "Spark"
        result = build_quanta(ctx, doc).execute()
        assert "sparklite" in result.platforms

    def test_join_union_sample_kinds(self):
        ctx = RheemContext()
        doc = {
            "operators": [
                {"name": "a", "kind": "collection_source",
                 "data": [[1, "x"], [2, "y"]]},
                {"name": "b", "kind": "collection_source",
                 "data": [[1, "z"]]},
                {"name": "j", "kind": "join", "left": "a", "right": "b",
                 "left_key": "x[0]", "right_key": "x[0]"},
            ],
            "sink": {"name": "j"},
        }
        out = build_quanta(ctx, doc).collect()
        assert out == [([1, "x"], [1, "z"])]

    def test_errors_are_reported(self):
        ctx = RheemContext()
        with pytest.raises(PlanDocumentError):
            build_quanta(ctx, {"operators": [
                {"name": "x", "kind": "teleport"}], "sink": {"name": "x"}})
        with pytest.raises(PlanDocumentError):
            build_quanta(ctx, {"operators": [], "sink": {"name": "ghost"}})
        with pytest.raises(PlanDocumentError):
            build_quanta(ctx, {"operators": []})


class TestRestService:
    def test_submit_ok(self):
        service = RheemService(_ctx_with_corpus())
        response = service.submit(WORDCOUNT_DOC)
        assert response["status"] == "ok"
        assert sorted(map(tuple, response["output"])) == [("a", 1), ("b", 2)]
        assert response["runtime"] > 0
        assert response["price_usd"] >= 0

    def test_submit_error_shape(self):
        service = RheemService(RheemContext())
        response = service.submit({"operators": [], "sink": {"name": "x"}})
        assert response["status"] == "error"
        assert "unknown dataset" in response["error"]

    def test_monetary_objective_via_document(self):
        ctx = RheemContext()
        from repro.workloads import write_abstracts
        write_abstracts(ctx, "hdfs://api/x.txt", 10)
        doc = json.loads(json.dumps(WORDCOUNT_DOC))
        doc["execution"] = {"objective": "monetary"}
        response = RheemService(ctx).submit(doc)
        assert response["status"] == "ok"
        assert response["platforms"] == ["pystreams"]

    def _call(self, app, method="POST", path="/jobs", body=b""):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        environ = {"REQUEST_METHOD": method, "PATH_INFO": path,
                   "CONTENT_LENGTH": str(len(body)),
                   "wsgi.input": io.BytesIO(body)}
        chunks = app(environ, start_response)
        return captured["status"], json.loads(b"".join(chunks))

    def test_wsgi_roundtrip(self):
        app = wsgi_app(RheemService(_ctx_with_corpus()))
        body = json.dumps(WORDCOUNT_DOC).encode()
        status, payload = self._call(app, body=body)
        assert status == "200 OK"
        assert payload["status"] == "ok"

    def test_wsgi_rejects_bad_requests(self):
        app = wsgi_app(RheemService(RheemContext()))
        status, __ = self._call(app, method="GET")
        assert status.startswith("404")
        status, payload = self._call(app, body=b"{not json")
        assert status.startswith("400")
        assert payload["status"] == "error"


class TestStudio:
    def _plan(self, ctx):
        ctx.vfs.write("hdfs://st/x.txt", ["a b"], sim_factor=5.0)
        return wordcount(ctx, "hdfs://st/x.txt").to_plan()

    def test_render_ascii_lists_operators(self, ctx):
        text = render_ascii(self._plan(ctx))
        assert "textfile-source" in text and "reduceby" in text
        assert "<-" in text

    def test_dot_output_is_wellformed(self, ctx):
        dot = plan_to_dot(self._plan(ctx))
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert dot.count("->") >= 3

    def test_dot_includes_loop_cluster(self, ctx):
        data = ctx.load_collection([1]).cache()
        seed = ctx.load_collection([0])
        plan = seed.repeat(2, lambda s, inv: s.map(lambda v: v + 1),
                           invariants=[data]).to_plan()
        dot = plan_to_dot(plan)
        assert "cluster_loop" in dot

    def test_explain_shows_choices_and_movement(self, ctx):
        ctx.pgres.create_table("t", ["k"], [{"k": i} for i in range(10)],
                               sim_factor=1e6)
        plan = (ctx.read_table("t")
                .map(lambda r: (r["k"] % 5, 1), bytes_per_record=16)
                .reduce_by_key(lambda t: t[0],
                               lambda a, b: (a[0], a[1] + b[1]))
                .to_plan())
        text = explain(ctx, plan)
        assert "estimated cost" in text
        assert "pgres" in text
        assert "->" in text


class TestXdbSql:
    def _ctx(self):
        ctx = RheemContext()
        customers = [{"custkey": i, "nationkey": i % 5,
                      "acctbal": float(100 * i)} for i in range(20)]
        nations = [{"nationkey": i, "regionkey": i % 2,
                    "nname": f"N{i}"} for i in range(5)]
        ctx.pgres.create_table("customer",
                               ["custkey", "nationkey", "acctbal"], customers)
        ctx.pgres.create_table("nation",
                               ["nationkey", "regionkey", "nname"], nations)
        return ctx

    def test_group_sum(self):
        ctx = self._ctx()
        out = run_sql(ctx, """
            SELECT nationkey, SUM(acctbal) FROM customer
            WHERE acctbal >= 500 GROUP BY nationkey
        """)
        expected = {}
        for i in range(20):
            if 100 * i >= 500:
                expected[i % 5] = expected.get(i % 5, 0) + 100.0 * i
        assert dict(out.output) == expected

    def test_join_with_filter(self):
        ctx = self._ctx()
        out = run_sql(ctx, """
            SELECT custkey FROM customer c
            JOIN nation n ON c.nationkey = n.nationkey
            WHERE n.regionkey = 1
        """)
        keys = sorted(r["custkey"] for r in out.output)
        assert keys == sorted(i for i in range(20) if (i % 5) % 2 == 1)

    def test_equality_and_ranges(self):
        ctx = self._ctx()
        out = run_sql(ctx, "SELECT custkey FROM customer "
                           "WHERE custkey > 15 AND custkey <= 18")
        assert sorted(r["custkey"] for r in out.output) == [16, 17, 18]

    def test_parser_rejects_nonsense(self):
        with pytest.raises(SqlError):
            parse_sql("DELETE FROM customer")
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t WHERE a LIKE 'x'")
        with pytest.raises(SqlError):
            run_sql(self._ctx(), "SELECT a FROM customer GROUP BY a")

    def test_query_compiles_to_cross_platform_plan(self):
        ctx = self._ctx()
        query = sql_query(ctx, "SELECT custkey, acctbal FROM customer")
        result = query.run()
        assert len(result.output) == 20


class TestCli:
    def test_run_script(self, tmp_path, capsys):
        from repro.__main__ import main
        script = tmp_path / "wc.latin"
        script.write_text("""
            lines = load 'hdfs://data/abstracts.txt';
            words = flatmap lines -> { x.split() };
            n = count words;
            dump n;
        """)
        code = main(["run", str(script), "--abstracts", "1"])
        assert code == 0
        assert "n:" in capsys.readouterr().out

    def test_no_subcommand_is_a_usage_error(self, capsys):
        from repro.__main__ import main
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage" in err and "subcommand" in err

    def test_unknown_subcommand_exits_2(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit) as err:
            main(["frobnicate"])
        assert err.value.code == 2

    def test_run_requires_a_script_argument(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit) as err:
            main(["run"])
        assert err.value.code == 2

    def test_serve_rejects_non_numeric_port(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit) as err:
            main(["serve", "--port", "not-a-number"])
        assert err.value.code == 2

    def test_run_rejects_non_numeric_seed_percent(self, tmp_path):
        from repro.__main__ import main
        script = tmp_path / "x.latin"
        script.write_text("dump 1;")
        with pytest.raises(SystemExit) as err:
            main(["run", str(script), "--abstracts", "lots"])
        assert err.value.code == 2

    def test_lint_parses_and_reports(self, tmp_path, capsys):
        from repro.__main__ import main
        script = tmp_path / "clean.py"
        script.write_text(
            "from repro import RheemContext\n"
            "ctx = RheemContext()\n"
            "ctx.load_collection([1, 2, 3]).map(lambda x: x + 1).collect()\n")
        assert main(["lint", str(script)]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestSerdeKindCoverage:
    def test_full_kind_matrix(self):
        ctx = RheemContext()
        ctx.pgres.create_table("kv", ["k", "v"],
                               [{"k": i % 3, "v": i} for i in range(12)])
        doc = {
            "operators": [
                {"name": "rows", "kind": "table_source", "table": "kv"},
                {"name": "vals", "kind": "map", "input": "rows",
                 "expr": "(x['k'], x['v'])"},
                {"name": "big", "kind": "filter", "input": "vals",
                 "expr": "x[1] >= 2"},
                {"name": "agg", "kind": "reduceby", "input": "big",
                 "key": "x[0]", "reducer": "(a[0], a[1] + b[1])",
                 "sim_groups": 3},
                {"name": "ordered", "kind": "sort", "input": "agg",
                 "key": "-x[1]"},
            ],
            "sink": {"name": "ordered"},
        }
        out = build_quanta(ctx, doc).collect()
        expected = {}
        for i in range(12):
            if i >= 2:
                expected[i % 3] = expected.get(i % 3, 0) + i
        assert dict(out) == expected
        assert [v for __, v in out] == sorted(expected.values(),
                                              reverse=True)

    def test_sample_groupby_cache_pagerank_kinds(self):
        ctx = RheemContext()
        doc = {
            "operators": [
                {"name": "edges", "kind": "collection_source",
                 "data": [[0, 1], [1, 0], [1, 2]]},
                {"name": "tupled", "kind": "map", "input": "edges",
                 "expr": "(x[0], x[1])"},
                {"name": "cached", "kind": "cache", "input": "tupled"},
                {"name": "ranks", "kind": "pagerank", "input": "cached",
                 "iterations": 5},
                {"name": "few", "kind": "sample", "input": "ranks",
                 "size": 2, "method": "first"},
                {"name": "n", "kind": "count", "input": "few"},
            ],
            "sink": {"name": "n"},
        }
        assert build_quanta(ctx, doc).collect() == [2]

    def test_env_collection_and_union(self):
        ctx = RheemContext()
        doc = {
            "operators": [
                {"name": "a", "kind": "collection_source", "env": "xs"},
                {"name": "b", "kind": "collection_source", "data": [9]},
                {"name": "u", "kind": "union", "left": "a", "right": "b"},
                {"name": "d", "kind": "distinct", "input": "u"},
            ],
            "sink": {"name": "d"},
        }
        out = build_quanta(ctx, doc, env={"xs": [1, 1, 2]}).collect()
        assert sorted(out) == [1, 2, 9]
