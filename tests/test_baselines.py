"""Tests for the comparator baselines (NADEEF/SparkSQL/MLlib/SystemML/
Musketeer analogs)."""

import math

import pytest

from repro import RheemContext
from repro.apps import BigDansing, sgd_hinge, tax_rule
from repro.baselines import (
    MusketeerRunner,
    mllib_sgd,
    nadeef_detect,
    sparksql_detect,
    systemml_sgd,
)
from repro.workloads import write_points, write_tax
from repro.workloads.graphs import power_law_edges
from repro.workloads.tax import parse_tax


def _tax(ctx, sim_rows, count=150):
    write_tax(ctx, "hdfs://tax", count, sim_rows, violations=4)
    records = [parse_tax(l) for l in ctx.vfs.read("hdfs://tax").records]
    data = (ctx.read_text_file("hdfs://tax")
            .map(parse_tax, name="parse-tax", bytes_per_record=60))
    return data, records


class TestNadeef:
    def test_agrees_with_rheem_detection(self):
        ctx = RheemContext()
        data, records = _tax(ctx, sim_rows=50_000)
        rheem = BigDansing(ctx).detect(data, tax_rule())
        nd = nadeef_detect(records, 50_000, tax_rule())
        key = lambda p: (p[0]["rid"], p[1]["rid"])
        assert sorted(map(key, rheem.output)) == \
            sorted(map(key, nd.violations))

    def test_quadratic_runtime(self):
        ctx = RheemContext()
        __, records = _tax(ctx, sim_rows=1)
        small = nadeef_detect(records, 100_000, tax_rule())
        large = nadeef_detect(records, 1_000_000, tax_rule())
        assert large.runtime / small.runtime > 50  # ~quadratic

    def test_killed_beyond_cutoff(self):
        ctx = RheemContext()
        __, records = _tax(ctx, sim_rows=1)
        outcome = nadeef_detect(records, 50_000_000, tax_rule())
        assert outcome.killed
        assert outcome.violations == []


class TestSparkSql:
    def test_agrees_with_rheem_detection(self):
        ctx = RheemContext()
        data, records = _tax(ctx, sim_rows=50_000)
        rheem = BigDansing(ctx).detect(data, tax_rule())
        ctx2 = RheemContext()
        data2, __ = _tax(ctx2, sim_rows=50_000)
        ss = sparksql_detect(ctx2, data2, tax_rule(), 50_000)
        key = lambda p: (p[0]["rid"], p[1]["rid"])
        assert sorted(map(key, rheem.output)) == \
            sorted(map(key, ss.violations))

    def test_much_slower_than_rheem(self):
        ctx = RheemContext()
        data, __ = _tax(ctx, sim_rows=100_000)
        rheem = BigDansing(ctx).detect(data, tax_rule())
        ctx2 = RheemContext()
        data2, __ = _tax(ctx2, sim_rows=100_000)
        ss = sparksql_detect(ctx2, data2, tax_rule(), 100_000)
        assert ss.runtime > 50 * rheem.runtime

    def test_killed_on_huge_inputs(self):
        ctx = RheemContext()
        data, __ = _tax(ctx, sim_rows=2_000_000_000)
        out = sparksql_detect(ctx, data, tax_rule(), 2_000_000_000)
        assert out.killed


class TestMLBaselines:
    def test_mllib_slower_than_cross_platform(self):
        ctx = RheemContext()
        spec = write_points(ctx, "hdfs://p", "higgs", percent=100)
        from repro.apps import ML4all
        rheem = ML4all(ctx).train("hdfs://p", sgd_hinge(spec.dimensions),
                                  iterations=40)
        ctx2 = RheemContext()
        write_points(ctx2, "hdfs://p", "higgs", percent=100)
        ml = mllib_sgd(ctx2, "hdfs://p", sgd_hinge(spec.dimensions),
                       iterations=40)
        assert ml.runtime > 2 * rheem.runtime
        assert ml.weights is not None

    def test_systemml_overhead_and_oom(self):
        ctx = RheemContext()
        spec = write_points(ctx, "hdfs://p", "rcv1", percent=100)
        sysml = systemml_sgd(ctx, "hdfs://p", sgd_hinge(spec.dimensions),
                             iterations=20)
        ctx2 = RheemContext()
        write_points(ctx2, "hdfs://p", "rcv1", percent=100)
        ml = mllib_sgd(ctx2, "hdfs://p", sgd_hinge(spec.dimensions),
                       iterations=20)
        assert sysml.runtime > ml.runtime  # recompilation overhead
        ctx3 = RheemContext()
        spec3 = write_points(ctx3, "hdfs://p", "svm", percent=100)
        wide = systemml_sgd(ctx3, "hdfs://p", sgd_hinge(spec3.dimensions),
                            iterations=20)
        assert wide.oom
        assert math.isnan(wide.runtime)


class TestMusketeer:
    def _edges(self):
        return [f"{a} {b}" for a, b in power_law_edges(2000, 200, seed=9)]

    def test_runtime_linear_in_iterations(self):
        runner = MusketeerRunner()
        lines = self._edges()
        t10 = runner.crocopr(lines, 5000.0, 140.0, iterations=10).runtime
        t100 = runner.crocopr(lines, 5000.0, 140.0, iterations=100).runtime
        slope = (t100 - t10) / 90
        assert slope > 30  # expensive per-iteration recompile/materialize

    def test_ranks_match_reference(self):
        from repro.algorithms import pagerank_edges
        from repro.workloads.graphs import parse_edge
        runner = MusketeerRunner()
        lines = self._edges()
        out = runner.crocopr(lines, 1000.0, 140.0, iterations=10)
        edges = sorted({parse_edge(l) for l in lines})
        reference = sorted(pagerank_edges(edges, iterations=10).items())
        assert out.ranks == reference
