"""Shared fixtures and hypothesis settings for the test suite."""

import pytest
from hypothesis import HealthCheck, settings

from repro import RheemContext
from repro.concurrency import set_debug

# Per-thread lock-rank assertions are on for the whole suite: any rank
# inversion the runtime reaches fails the test that reached it instead
# of deadlocking a later one.
set_debug(True)

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def ctx() -> RheemContext:
    """A fresh context with all built-in platforms registered."""
    return RheemContext()


def wordcount(context, path, **hints):
    """The canonical WordCount pipeline used by several test modules."""
    return (context.read_text_file(path)
            .flat_map(str.split, bytes_per_record=12, **hints)
            .map(lambda w: (w, 1), bytes_per_record=16)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1])))
