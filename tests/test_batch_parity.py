"""Vectorized-vs-legacy parity: same results, same simulated runtime.

``config={"vectorize": True}`` swaps the per-record engines for the
record-batch engines but must change nothing observable: the query
result is bit-for-bit identical, the simulated runtime is bit-for-bit
identical (batch operators charge exactly what their scalar twins
charge and batch conversions are free), and sniffers keep seeing plain
record lists.  Each test runs one workload in both modes and compares.
"""

import pytest

from repro import RheemContext
from repro.apps import crocopr, q5_quanta
from repro.core.executor import Sniffer
from repro.core.faults import FaultInjector
from repro.workloads import TpchLite, write_community
from conftest import wordcount


def _both(build, **execute_kw):
    """Execute ``build(ctx)`` with vectorization off and on."""
    results = []
    for vectorize in (False, True):
        ctx = RheemContext(config={"vectorize": vectorize})
        results.append(build(ctx).execute(**execute_kw))
    return results


def _assert_parity(legacy, vectorized):
    assert vectorized.outputs == legacy.outputs
    assert vectorized.runtime == legacy.runtime
    assert vectorized.platforms == legacy.platforms
    assert vectorized.stage_count == legacy.stage_count


class TestWorkloadParity:
    def test_wordcount(self):
        def build(ctx):
            ctx.vfs.write("hdfs://bp/lines.txt",
                          ["a b", "b c", "c", "a a b"], sim_factor=1000.0)
            return wordcount(ctx, "hdfs://bp/lines.txt")

        legacy, vectorized = _both(build)
        _assert_parity(legacy, vectorized)
        assert dict(legacy.output) == {"a": 3, "b": 3, "c": 2}
        # == can't see numpy scalars (np.str_ == str): the records must
        # be plain Python types, not just equal-comparing ones.
        assert all(type(w) is str and type(n) is int
                   for w, n in vectorized.output)

    def test_tpch_q5_polystore(self):
        def build(ctx):
            gen = TpchLite(0.1)
            gen.place_for_q5(ctx)
            return q5_quanta(ctx, 0.1, "polystore")

        legacy, vectorized = _both(build)
        _assert_parity(legacy, vectorized)
        assert legacy.output, "Q5 returned no rows"

    def test_tpch_q5_in_memory(self):
        from repro.workloads.tpch import ROW_BYTES, SF1_ROWS

        gen = TpchLite(0.1)
        tables = {t: gen.table(t) for t in SF1_ROWS}

        def build(ctx):
            def mem(ctx_, table):
                return ctx_.load_collection(
                    tables[table], sim_factor=gen.sim_factor(table),
                    bytes_per_record=ROW_BYTES[table])
            return q5_quanta(ctx, 0.1, sources={t: mem for t in SF1_ROWS})

        legacy, vectorized = _both(build)
        _assert_parity(legacy, vectorized)

    def test_crocopr_pagerank(self):
        # Union + distinct + PageRank: PageRank has no batch twin, so the
        # plan crosses batch -> collection -> batch conversions mid-stream.
        results = []
        for vectorize in (False, True):
            ctx = RheemContext(config={"vectorize": vectorize})
            write_community(ctx, "hdfs://bp/c1", 1, sim_mb=10.0)
            write_community(ctx, "hdfs://bp/c2", 2, sim_mb=10.0)
            results.append(crocopr(ctx, "hdfs://bp/c1", "hdfs://bp/c2",
                                   iterations=5))
        legacy, vectorized = results
        _assert_parity(legacy, vectorized)

    def test_pipeline_with_unbatched_operators(self):
        # sample / zip_with_id have no batch twins; parity must survive
        # the round trip through their per-record implementations.
        def build(ctx):
            return (ctx.load_collection(list(range(200)))
                    .map(lambda x: x * 3)
                    .sample(size=10)
                    .zip_with_id()
                    .sort(key=lambda t: t[1]))

        legacy, vectorized = _both(build)
        _assert_parity(legacy, vectorized)
        assert len(legacy.output) == 10


class TestControlFlowParity:
    def test_repeat_loop(self):
        def build(ctx):
            data = ctx.load_collection([1, 2, 3]).cache()
            seed = ctx.load_collection([0])
            return seed.repeat(
                3, lambda s, inv: s.map(lambda v: v + 1), invariants=[data])

        legacy, vectorized = _both(build)
        _assert_parity(legacy, vectorized)
        assert legacy.output == [3]

    def test_do_while_loop(self):
        def build(ctx):
            seed = ctx.load_collection([1])
            return seed.do_while(lambda vals: vals[0] < 16,
                                 lambda s: s.map(lambda v: v * 2))

        legacy, vectorized = _both(build)
        _assert_parity(legacy, vectorized)
        assert legacy.output == [16]

    def test_fault_injected_retry(self):
        def build(ctx):
            ctx.vfs.write("hdfs://bp/f.txt", ["a b", "b"], sim_factor=500.0)
            return wordcount(ctx, "hdfs://bp/f.txt")

        def stage_id(vectorize):
            ctx = RheemContext(config={"vectorize": vectorize})
            plan = build(ctx).to_plan()
            exec_plan, __ = ctx.optimize(plan)
            return exec_plan.build_stages(break_after=set())[0].id

        results = []
        for vectorize in (False, True):
            ctx = RheemContext(config={"vectorize": vectorize})
            injector = FaultInjector(
                failures={stage_id(vectorize): 2})
            result = build(ctx).execute(fault_injector=injector,
                                        max_stage_retries=2)
            assert injector.injected == 2
            results.append(result)
        _assert_parity(*results)


class TestSnifferParity:
    def test_sniffers_see_plain_records_in_both_modes(self):
        taps = []
        for vectorize in (False, True):
            ctx = RheemContext(config={"vectorize": vectorize})
            ctx.vfs.write("hdfs://bp/s.txt", ["a b", "b c"],
                          sim_factor=100.0)
            dq = wordcount(ctx, "hdfs://bp/s.txt")
            flatmap_op = dq.op.inputs[0].op.inputs[0].op
            tapped = []
            dq.execute(sniffers=[Sniffer(flatmap_op.id, tapped.append)])
            assert len(tapped) == 1
            taps.append(tapped[0])
        legacy_view, vectorized_view = taps
        assert isinstance(vectorized_view, list)
        assert vectorized_view == legacy_view == ["a", "b", "b", "c"]
