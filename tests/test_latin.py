"""Tests for the RheemLatin language: lexer, parser, interpreter."""

import pytest

from repro import RheemContext
from repro.latin import (
    Assign,
    Dump,
    Interpreter,
    LatinSyntaxError,
    Store,
    parse,
    resolve_platform,
    run_script,
    tokenize,
)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("x = map y -> { a + 1 };")
        assert [t.kind for t in tokens] == \
            ["ident", "=", "ident", "ident", "->", "expr", ";"]

    def test_strings_and_numbers(self):
        tokens = tokenize("lines = load 'hdfs://f'; s = sample lines 10;")
        assert tokens[3].kind == "string" and tokens[3].value == "hdfs://f"
        assert tokens[9].kind == "number"

    def test_comments_skipped(self):
        tokens = tokenize("-- a comment\nx = distinct y;")
        assert tokens[0].value == "x"

    def test_nested_braces_captured(self):
        tokens = tokenize("x = map y -> { {'k': v for v in [1]} };")
        assert "{'k': v for v in [1]}" in tokens[5].value

    def test_unterminated_string(self):
        with pytest.raises(LatinSyntaxError):
            tokenize("x = load 'oops;")

    def test_unterminated_brace(self):
        with pytest.raises(LatinSyntaxError):
            tokenize("x = map y -> { broken;")

    def test_stray_character(self):
        with pytest.raises(LatinSyntaxError):
            tokenize("x = y @ z;")


class TestParser:
    def test_statement_kinds(self):
        statements = parse("""
            lines = load 'hdfs://f';
            words = flatmap lines -> { x.split() };
            store words 'hdfs://out';
            dump words;
        """)
        assert isinstance(statements[0], Assign)
        assert isinstance(statements[2], Store)
        assert isinstance(statements[3], Dump)

    def test_join_parses_both_sides(self):
        (stmt,) = parse("j = join a by { x[0] }, b by { x[1] };")
        assert stmt.op.sources == ["a", "b"]
        assert len(stmt.op.codes) == 2

    def test_with_clauses(self):
        (stmt,) = parse(
            "m = map d -> { x } with broadcast w with platform 'Spark';")
        assert stmt.op.broadcasts == ["w"]
        assert stmt.op.platform == "Spark"

    def test_repeat_body_is_raw(self):
        (stmt,) = parse("w = repeat 5 { w = map w -> { x }; };")
        assert stmt.op.options["iterations"] == 5
        assert "map w" in stmt.op.codes[0]

    def test_missing_semicolon(self):
        with pytest.raises(LatinSyntaxError):
            parse("x = distinct y")

    def test_unknown_with_clause(self):
        with pytest.raises(LatinSyntaxError):
            parse("x = distinct y with sprinkles z;")


class TestInterpreter:
    def test_wordcount_script(self):
        ctx = RheemContext()
        ctx.vfs.write("hdfs://f", ["a b a"], sim_factor=1.0)
        results = run_script("""
            lines = load 'hdfs://f';
            words = flatmap lines -> { x.split() };
            pairs = map words -> { (x, 1) };
            counts = reduceby pairs by { x[0] } with { (a[0], a[1]+b[1]) };
            dump counts;
        """, ctx)
        assert sorted(results["counts"]) == [("a", 2), ("b", 1)]

    def test_env_names_visible_in_expressions(self):
        ctx = RheemContext()
        results = run_script("""
            data = load collection nums;
            out = map data -> { double(x) };
            dump out;
        """, ctx, env={"nums": [1, 2], "double": lambda v: v * 2})
        assert results["out"] == [2, 4]

    def test_platform_pinning_via_alias(self):
        ctx = RheemContext()
        ctx.vfs.write("hdfs://f", ["a"] * 5, sim_factor=1.0)
        interp = Interpreter(ctx)
        interp.run("""
            lines = load 'hdfs://f';
            upper = map lines -> { x.upper() } with platform 'Spark';
            dump upper;
        """)
        assert interp.results["upper"] == ["A"] * 5

    def test_store_writes_vfs(self):
        ctx = RheemContext()
        run_script("""
            d = load collection nums;
            store d 'hdfs://out/x';
        """, ctx, env={"nums": [7]})
        assert ctx.vfs.read("hdfs://out/x").records == ["7"]

    def test_unknown_dataset_reported(self):
        with pytest.raises(LatinSyntaxError):
            run_script("x = distinct ghost;", RheemContext())

    def test_unknown_keyword_reported(self):
        with pytest.raises(LatinSyntaxError):
            run_script("x = frobnicate y;", RheemContext())

    def test_keyword_extension(self):
        ctx = RheemContext()
        interp = Interpreter(ctx, env={"nums": [3, 1, 2]})

        def head(interpreter, op, line):
            src = interpreter.datasets[op.sources[0]]
            return src.sort().sample(size=int(op.options["args"][0]),
                                     method="first")

        interp.register_keyword("head", head)
        interp.run("""
            d = load collection nums;
            top = head d 2;
            dump top;
        """)
        assert interp.results["top"] == [1, 2]

    def test_repeat_with_invariant_and_broadcast(self):
        ctx = RheemContext()
        results = run_script("""
            data = load collection nums;
            base = cache data;
            w = load collection w0;
            w = repeat 3 {
              s = sample base 2 method 'first' with broadcast w;
              t = map s -> { x + bc[0][0] } with broadcast w;
              w = reduce t -> { a + b };
            };
            dump w;
        """, ctx, env={"nums": [1, 1], "w0": [0]})
        # iter1: w=2, iter2: 1+2 twice -> 6, iter3: 1+6 twice -> 14
        assert results["w"] == [14]

    def test_repeat_requires_single_loop_var(self):
        ctx = RheemContext()
        with pytest.raises(LatinSyntaxError):
            run_script("""
                a = load collection nums;
                b = repeat 2 { c = map a -> { x }; };
            """, ctx, env={"nums": [1]})


class TestPlatformAliases:
    def test_paper_names_resolve(self):
        assert resolve_platform("JavaStreams") == "pystreams"
        assert resolve_platform("Spark") == "sparklite"
        assert resolve_platform("Postgres") == "pgres"
        assert resolve_platform("Giraph") == "graphlite"

    def test_unknown_name_passes_through(self):
        assert resolve_platform("sparklite") == "sparklite"


class TestMoreStatements:
    def test_join_union_intersect(self):
        ctx = RheemContext()
        results = run_script("""
            a = load collection left;
            b = load collection right;
            j = join a by { x[0] }, b by { x[0] };
            u = union a, b;
            i = intersect a, b;
            dump j;
            dump u;
            dump i;
        """, ctx, env={"left": [(1, "l"), (2, "l")],
                       "right": [(2, "r"), (3, "r")]})
        assert results["j"] == [((2, "l"), (2, "r"))]
        assert sorted(results["u"]) == [(1, "l"), (2, "l"), (2, "r"), (3, "r")]
        assert results["i"] == []

    def test_group_sort_count(self):
        ctx = RheemContext()
        results = run_script("""
            nums = load collection values;
            g = group nums by { x % 2 };
            s = sort nums by { -x };
            n = count nums;
            dump g;
            dump s;
            dump n;
        """, ctx, env={"values": [3, 1, 2, 4]})
        groups = {k: sorted(v) for k, v in results["g"]}
        assert groups == {0: [2, 4], 1: [1, 3]}
        assert results["s"] == [4, 3, 2, 1]
        assert results["n"] == [4]

    def test_pagerank_statement(self):
        ctx = RheemContext()
        results = run_script("""
            edges = load collection links;
            ranks = pagerank edges iterations 5;
            dump ranks;
        """, ctx, env={"links": [(0, 1), (1, 0), (1, 2)]})
        assert {v for v, __ in results["ranks"]} == {0, 1, 2}

    def test_load_table_statement(self):
        ctx = RheemContext()
        ctx.pgres.create_table("users", ["name"], [{"name": "ada"}])
        results = run_script("""
            u = load table 'users';
            names = map u -> { x['name'] };
            dump names;
        """, ctx)
        assert results["names"] == ["ada"]
