"""Engine-level tests: partitioned datasets, Pregel, the graph library,
the relational engine, and cross-engine result equivalence."""

import pytest
from hypothesis import given, strategies as st

from repro.algorithms import pagerank_edges
from repro.platforms.distributed import PartitionedDataset
from repro.platforms.graphlite import PregelEngine
from repro.platforms.jgraph import Graph
from repro.platforms.pgres import (
    DuplicateTable,
    PgresDatabase,
    TableNotFound,
)


class TestPartitionedDataset:
    def test_from_records_distributes_all(self):
        ds = PartitionedDataset.from_records(range(10), 3)
        assert ds.num_partitions == 3
        assert sorted(ds.records()) == list(range(10))

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            PartitionedDataset.from_records([1], 0)

    def test_map_partitions(self):
        ds = PartitionedDataset.from_records(range(6), 2)
        out = ds.map_partitions(lambda p: [x * 2 for x in p])
        assert sorted(out.records()) == [0, 2, 4, 6, 8, 10]

    @given(st.lists(st.integers(0, 50), max_size=60), st.integers(1, 7))
    def test_shuffle_preserves_multiset(self, records, n):
        ds = PartitionedDataset.from_records(records, 3)
        shuffled = ds.shuffle_by_key(lambda x: x % 5, n)
        assert sorted(shuffled.records()) == sorted(records)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    def test_shuffle_colocates_keys(self, records):
        ds = PartitionedDataset.from_records(records, 4)
        shuffled = ds.shuffle_by_key(lambda x: x % 3, 4)
        location = {}
        for pid, part in enumerate(shuffled.partitions):
            for record in part:
                key = record % 3
                assert location.setdefault(key, pid) == pid

    def test_zip_partitions_requires_equal_counts(self):
        a = PartitionedDataset.from_records(range(4), 2)
        b = PartitionedDataset.from_records(range(4), 4)
        with pytest.raises(ValueError):
            a.zip_partitions(b, lambda x, y: x + y)

    def test_empty_dataset(self):
        ds = PartitionedDataset([])
        assert ds.count() == 0 and ds.num_partitions == 1


class TestPregelEngine:
    def test_pagerank_matches_reference(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 2), (3, 0)]
        pregel = PregelEngine(num_partitions=4).pagerank(edges, iterations=15)
        reference = pagerank_edges(edges, iterations=15)
        for v in reference:
            assert pregel[v] == pytest.approx(reference[v])

    def test_partition_count_does_not_change_result(self):
        edges = [(i, (i * 3) % 11) for i in range(11)]
        one = PregelEngine(num_partitions=1).pagerank(edges)
        many = PregelEngine(num_partitions=8).pagerank(edges)
        for v in one:
            assert one[v] == pytest.approx(many[v])

    def test_superstep_stats_recorded(self):
        engine = PregelEngine(num_partitions=2)
        engine.pagerank([(0, 1), (1, 0)], iterations=5)
        assert len(engine.stats) == 5
        assert all(s.messages_sent == 2 for s in engine.stats)

    def test_empty_graph(self):
        assert PregelEngine().pagerank([]) == {}

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            PregelEngine(num_partitions=0)


class TestJGraphLibrary:
    def test_counts_and_degrees(self):
        g = Graph.from_edges([(1, 2), (1, 3), (2, 3)])
        assert g.num_vertices == 3 and g.num_edges == 3
        assert g.out_degree(1) == 2 and g.out_degree(3) == 0
        assert sorted(g.neighbors(1)) == [2, 3]

    def test_pagerank_matches_reference(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        ours = Graph.from_edges(edges).pagerank(iterations=20)
        ref = pagerank_edges(edges, iterations=20)
        for v in ref:
            assert ours[v] == pytest.approx(ref[v])

    def test_reachability(self):
        g = Graph.from_edges([(1, 2), (2, 3), (4, 5)])
        assert g.reachable_from(1) == {1, 2, 3}
        assert g.reachable_from(99) == set()


class TestPgresEngine:
    def _db(self):
        db = PgresDatabase()
        rows = [{"k": i, "v": i * 10} for i in range(20)]
        db.create_table("t", ["k", "v"], rows, sim_factor=100.0,
                        bytes_per_row=80.0)
        return db

    def test_create_read_drop(self):
        db = self._db()
        assert len(db.table("t").rows) == 20
        db.drop_table("t")
        with pytest.raises(TableNotFound):
            db.table("t")

    def test_duplicate_table_rejected(self):
        db = self._db()
        with pytest.raises(DuplicateTable):
            db.create_table("t", ["k"])

    def test_analyze_and_row_bytes(self):
        db = self._db()
        assert db.analyze() == {"t": 2000.0}
        assert db.row_bytes() == {"t": 80.0}

    def test_index_range_scan_matches_linear(self):
        db = self._db()
        index = db.create_index("t", "v")
        rows = db.table("t").rows
        got = sorted(rows[i]["v"] for i in index.range_row_ids(30, 120))
        expected = sorted(r["v"] for r in rows if 30 <= r["v"] <= 120)
        assert got == expected

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=40),
           st.integers(-50, 50), st.integers(-50, 50))
    def test_index_scan_property(self, values, a, b):
        low, high = sorted((a, b))
        db = PgresDatabase()
        rows = [{"x": v} for v in values]
        db.create_table("p", ["x"], rows)
        index = db.create_index("p", "x")
        got = sorted(rows[i]["x"] for i in index.range_row_ids(low, high))
        assert got == sorted(v for v in values if low <= v <= high)

    def test_open_ended_ranges(self):
        db = self._db()
        index = db.create_index("t", "k")
        assert len(index.range_row_ids(None, None)) == 20
        assert len(index.range_row_ids(15, None)) == 5

    def test_index_on_missing_column(self):
        with pytest.raises(ValueError):
            self._db().create_index("t", "nope")

    def test_insert_rebuilds_index(self):
        db = self._db()
        index = db.create_index("t", "k")
        db.insert_many("t", [{"k": 100, "v": 0}])
        assert db.table("t").rows[
            index.range_row_ids(100, 100)[0]]["k"] == 100

    def test_projection_bytes(self):
        table = self._db().table("t")
        assert table.bytes_for_projection(["k"]) == pytest.approx(40.0)
        assert table.bytes_for_projection(None) == 80.0


class TestEngineEquivalence:
    """The same logical pipeline must produce identical results on every
    platform able to run it (the substance behind platform independence)."""

    PLATFORMS = ("pystreams", "sparklite", "flinklite")

    def _run(self, ctx_factory, platform, pipeline):
        ctx = ctx_factory()
        return pipeline(ctx).collect(
            allowed_platforms={platform, "driver"})

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=40))
    def test_map_filter_distinct_sort(self, values):
        def factory():
            from repro import RheemContext
            return RheemContext()

        def pipeline(ctx):
            return (ctx.load_collection(values)
                    .map(lambda x: x * 2)
                    .filter(lambda x: x >= 0)
                    .distinct()
                    .sort())

        results = [self._run(factory, p, pipeline) for p in self.PLATFORMS]
        assert results[0] == results[1] == results[2]

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=40))
    def test_reduce_by_key(self, values):
        def factory():
            from repro import RheemContext
            return RheemContext()

        def pipeline(ctx):
            return (ctx.load_collection(values)
                    .map(lambda x: (x % 4, x))
                    .reduce_by_key(lambda t: t[0],
                                   lambda a, b: (a[0], a[1] + b[1])))

        results = [sorted(self._run(factory, p, pipeline))
                   for p in self.PLATFORMS]
        assert results[0] == results[1] == results[2]

    def test_join_and_union_across_platforms(self):
        left = [(i, f"l{i}") for i in range(10)]
        right = [(i % 5, f"r{i}") for i in range(10)]

        def pipeline(ctx):
            a = ctx.load_collection(left)
            b = ctx.load_collection(right)
            return a.join(b, lambda t: t[0], lambda t: t[0])

        from repro import RheemContext
        results = [sorted(self._run(RheemContext, p, pipeline))
                   for p in self.PLATFORMS]
        assert results[0] == results[1] == results[2]
        assert len(results[0]) == 10  # keys 0-4 match twice each

    def test_global_reduce_and_count(self):
        from repro import RheemContext
        for platform in self.PLATFORMS:
            ctx = RheemContext()
            total = (ctx.load_collection(list(range(50)))
                     .reduce(lambda a, b: a + b)
                     .collect(allowed_platforms={platform, "driver"}))
            assert total == [sum(range(50))]
            ctx = RheemContext()
            n = (ctx.load_collection(list(range(50))).count()
                 .collect(allowed_platforms={platform, "driver"}))
            assert n == [50]
