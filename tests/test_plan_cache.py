"""The execution-plan cache, plan fingerprints, and cache losslessness."""

import pytest
from conftest import wordcount

from repro import RheemContext
from repro.apps.dataciv import q5_quanta
from repro.core.cost import OperatorCostParams
from repro.core.fingerprint import plan_fingerprint
from repro.workloads.tpch import TpchLite


def _wordcount_plan(ctx):
    ctx.vfs.write("hdfs://cache/corpus.txt", ["to be or not to be"] * 40,
                  sim_factor=1_000.0)
    return wordcount(ctx, "hdfs://cache/corpus.txt").to_plan()


class TestFingerprint:
    def test_identical_rebuilds_share_a_fingerprint(self, ctx):
        # Freshly constructed lambdas at different addresses must hash by
        # code, not identity — that is the whole point of the fingerprint.
        a = plan_fingerprint(_wordcount_plan(ctx))
        b = plan_fingerprint(_wordcount_plan(ctx))
        assert a is not None and a == b

    def test_udf_code_changes_the_fingerprint(self, ctx):
        base = (ctx.load_collection([1, 2, 3])
                .map(lambda x: x + 1).to_plan())
        other = (ctx.load_collection([1, 2, 3])
                 .map(lambda x: x + 2).to_plan())
        assert plan_fingerprint(base) != plan_fingerprint(other)

    def test_closure_contents_matter(self, ctx):
        def build(k):
            return (ctx.load_collection([1, 2, 3])
                    .map(lambda x: x + k).to_plan())

        assert plan_fingerprint(build(1)) != plan_fingerprint(build(2))
        assert plan_fingerprint(build(5)) == plan_fingerprint(build(5))

    def test_source_data_matters(self, ctx):
        a = ctx.load_collection([1, 2]).map(str).to_plan()
        b = ctx.load_collection([1, 3]).map(str).to_plan()
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_target_platform_pin_matters(self, ctx):
        a = ctx.load_collection([1, 2]).map(str).to_plan()
        b = (ctx.load_collection([1, 2])
             .map(str).with_target_platform("sparklite").to_plan())
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_unstable_attribute_disables_caching(self, ctx):
        quanta = ctx.load_collection([1, 2]).map(str)
        quanta.op.mystery = object()  # only identified by its address
        assert plan_fingerprint(quanta.to_plan()) is None

    def test_loops_fingerprint_their_bodies(self, ctx):
        def build(increment):
            return (ctx.load_collection([0])
                    .repeat(3, lambda s: s.map(
                        lambda v, __k=increment: v + __k))
                    .to_plan())

        assert plan_fingerprint(build(1)) is not None
        assert plan_fingerprint(build(1)) == plan_fingerprint(build(1))
        assert plan_fingerprint(build(1)) != plan_fingerprint(build(2))


class TestExecutionPlanCache:
    """The plan-cache layer in isolation.

    Result reuse (the intermediate-result store) sits in front of the
    plan cache and would satisfy resubmissions without ever consulting
    it, so the tests that assert plan-cache lookup traffic disable the
    store; the store's own behaviour lives in test_result_reuse.py.
    """

    def test_resubmission_hits_and_agrees(self, ctx):
        ctx.result_store.enabled = False
        first = ctx.execute(_wordcount_plan(ctx))
        assert ctx.plan_cache.stats["hits"] == 0
        assert ctx.plan_cache.stats["misses"] == 1
        second = ctx.execute(_wordcount_plan(ctx))
        assert ctx.plan_cache.stats["hits"] == 1
        assert sorted(first.output) == sorted(second.output)
        assert second.runtime == pytest.approx(first.runtime)

    def test_different_platform_whitelists_do_not_collide(self, ctx):
        ctx.result_store.enabled = False
        plan = _wordcount_plan(ctx)
        ctx.execute(plan, allowed_platforms={"pystreams", "driver"})
        ctx.execute(_wordcount_plan(ctx))
        assert ctx.plan_cache.stats["hits"] == 0
        assert len(ctx.plan_cache) == 2

    def test_lru_eviction(self):
        ctx = RheemContext(config={"plan_cache_size": 1})
        ctx.execute(ctx.load_collection([1, 2]).map(str).to_plan())
        ctx.execute(ctx.load_collection([3, 4]).map(str).to_plan())
        assert ctx.plan_cache.stats["evictions"] == 1
        assert len(ctx.plan_cache) == 1
        # The first plan was evicted: re-running it misses again.
        ctx.execute(ctx.load_collection([1, 2]).map(str).to_plan())
        assert ctx.plan_cache.stats["hits"] == 0

    def test_config_flag_disables_cache(self):
        ctx = RheemContext(config={"plan_cache": False})
        ctx.execute(ctx.load_collection([1, 2]).map(str).to_plan())
        ctx.execute(ctx.load_collection([1, 2]).map(str).to_plan())
        assert len(ctx.plan_cache) == 0
        assert ctx.plan_cache.stats["hits"] == 0

    def test_publishing_cost_params_flushes(self, ctx):
        ctx.execute(_wordcount_plan(ctx))
        assert len(ctx.plan_cache) == 1
        version = ctx.cost_model.version
        ctx.publish_cost_params(
            {"pystreams.map": OperatorCostParams(2.0, 0.0, 0.1)})
        assert len(ctx.plan_cache) == 0
        assert ctx.plan_cache.stats["flushes"] == 1
        assert ctx.cost_model.version == version + 1
        assert ctx.cost_model.params["pystreams.map"].alpha == 2.0
        # The next run re-optimizes under the new parameters and misses.
        ctx.execute(_wordcount_plan(ctx))
        assert ctx.plan_cache.stats["hits"] == 0

    def test_metrics_registry_sees_cache_traffic(self, ctx):
        ctx.result_store.enabled = False
        ctx.execute(_wordcount_plan(ctx))
        ctx.execute(_wordcount_plan(ctx))
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["plan_cache.misses"] == 1
        assert counters["plan_cache.hits"] == 1

    def test_rest_resubmission_reuses_the_plan(self):
        from repro.api import RheemService

        service = RheemService()
        service.ctx.vfs.write("hdfs://doc/lines.txt", ["a b a"] * 10,
                              sim_factor=100.0)
        document = {
            "operators": [
                {"name": "lines", "kind": "textfile_source",
                 "path": "hdfs://doc/lines.txt"},
                {"name": "words", "kind": "flatmap", "input": "lines",
                 "expr": "x.split()"},
            ],
            "sink": {"name": "words"},
        }
        first = service.submit(document)
        second = service.submit(document)
        assert first["status"] == second["status"] == "ok"
        assert sorted(first["output"]) == sorted(second["output"])
        # Resubmission reuse now happens one layer earlier: the second
        # submission hits the intermediate-result store (skipping plan
        # enumeration AND execution), so the plan cache is never asked.
        counters = second["trace"]["metrics"]["counters"]
        assert (counters.get("intermediate.hits", 0)
                + counters.get("plan_cache.hits", 0)) >= 1


class TestLosslessness:
    """Caches on and off must select cost-identical plans."""

    def _best(self, ctx, plan):
        optimizer = ctx.optimizer()
        best, __ = optimizer.pick_best(plan)
        # Operator ids are process-global counters, so structurally equal
        # plans built separately carry different ids: compare decisions by
        # topological position instead.
        names = [getattr(best.decisions[op.id], "platform",
                         type(best.decisions[op.id]).__name__)
                 for op in plan.operators()]
        return best.cost.geometric_mean, names

    def test_q5_polystore_plan_is_cache_invariant(self):
        reference = self._q5_best(caching=True)
        candidate = self._q5_best(caching=False)
        assert candidate[0] == pytest.approx(reference[0])
        assert candidate[1] == reference[1]

    def _q5_best(self, caching):
        ctx = RheemContext()
        ctx.graph.caching = caching
        TpchLite(1).place_for_q5(ctx)
        return self._best(ctx, q5_quanta(ctx, 1, "polystore").to_plan())

    def test_wordcount_plan_is_cache_invariant(self):
        results = []
        for caching in (True, False):
            ctx = RheemContext()
            ctx.graph.caching = caching
            results.append(self._best(ctx, _wordcount_plan(ctx)))
        (gm_on, names_on), (gm_off, names_off) = results
        assert gm_on == pytest.approx(gm_off)
        assert names_on == names_off

    def test_end_to_end_results_match_with_caches_off(self):
        on = RheemContext()
        off = RheemContext(config={"plan_cache": False})
        off.graph.caching = False
        out_on = on.execute(_wordcount_plan(on))
        out_off = off.execute(_wordcount_plan(off))
        assert sorted(out_on.output) == sorted(out_off.output)
        assert out_on.runtime == pytest.approx(out_off.runtime)


class TestExecutorCollectMemo:
    def test_loop_condition_path_resolved_once_per_descriptor(self, ctx):
        from repro.core.channels import Channel
        from repro.platforms.pystreams.channels import PY_COLLECTION

        executor = ctx.executor()
        rdd = next(d for d in ctx.graph.descriptors()
                   if d.name == "sparklite.rdd")
        solves = []

        class FakePath:
            def apply(self, channel, ctx):
                return Channel(PY_COLLECTION, payload=list(channel.payload))

        def counting(source, target, *args, **kwargs):
            solves.append(source.name)
            return FakePath()

        ctx.graph.cheapest_path = counting
        # Five loop-condition checks on the same descriptor: one solve.
        for __ in range(5):
            channel = Channel(rdd, payload=[1, 2, 3])
            assert executor._materialize_payload(channel, None) == [1, 2, 3]
        assert solves == ["sparklite.rdd"]
        # Graph mutations invalidate the memo via the version counter.
        ctx.graph._invalidate()
        executor._materialize_payload(Channel(rdd, payload=[1]), None)
        assert solves == ["sparklite.rdd", "sparklite.rdd"]
