"""End-to-end extensibility tests: custom operators and a whole new
platform plugged in exactly the way the paper prescribes — execution
operators + mappings, channels, and conversions to/from ONE existing
channel."""

import pytest

from repro import RheemContext
from repro.core.channels import Channel, ChannelDescriptor, Conversion
from repro.core.mappings import OperatorMapping
from repro.core.operators import Map, Operator
from repro.core.cardinality import CardinalityEstimate
from repro.platforms.base import ExecutionOperator, Platform, charge_operator
from repro.platforms.pystreams.channels import PY_COLLECTION


# ---------------------------------------------------------------------------
# A user-defined logical operator + execution operator (customOperator).
# ---------------------------------------------------------------------------
class TopK(Operator):
    """Keep the K largest quanta (user-defined logical operator)."""

    def __init__(self, k: int) -> None:
        super().__init__(f"top{k}")
        self.k = k

    def estimate_cardinality(self, inputs, ctx):
        return CardinalityEstimate.exact(self.k)


class PyTopK(ExecutionOperator):
    """Heap-select implementation on the in-process platform."""

    platform = "pystreams"
    op_kind = "topk"

    def input_descriptors(self):
        return [PY_COLLECTION]

    def output_descriptor(self):
        return PY_COLLECTION

    def execute(self, inputs, broadcasts, ctx):
        import heapq
        ch = inputs[0]
        out = heapq.nlargest(self.logical.k, ch.payload)
        result = Channel(PY_COLLECTION, out, 1.0, ch.bytes_per_record,
                         len(out))
        charge_operator(ctx, self, ch.sim_cardinality, len(out))
        return result


class TestCustomOperator:
    def test_custom_operator_round_trip(self, ctx):
        out = (ctx.load_collection([5, 1, 9, 7, 3])
               .map(lambda x: x * 2)
               .custom_operator(TopK(2), lambda op: [PyTopK(op)])
               .collect())
        assert sorted(out) == [14, 18]

    def test_custom_mapping_scoped_to_one_instance(self, ctx):
        first = TopK(1)
        (ctx.load_collection([1, 2])
         .custom_operator(first, lambda op: [PyTopK(op)]).collect())
        # A DIFFERENT TopK instance has no mapping: the registry guard
        # matches only the registered instance.
        from repro.core.mappings import NoMappingError
        with pytest.raises(NoMappingError):
            ctx.registry.alternatives_for(TopK(1))


# ---------------------------------------------------------------------------
# A whole new platform: "arraydb", with one channel, two conversions and a
# couple of execution operators.
# ---------------------------------------------------------------------------
ARRAY_CHANNEL = ChannelDescriptor("arraydb.array", "arraydb", True)


class ArrayMap(ExecutionOperator):
    """Vectorized map on the array platform."""

    platform = "arraydb"
    op_kind = "map"

    def input_descriptors(self):
        return [ARRAY_CHANNEL]

    def output_descriptor(self):
        return ARRAY_CHANNEL

    def execute(self, inputs, broadcasts, ctx):
        ch = inputs[0]
        bvals = [b.payload for b in broadcasts]
        out = [self.logical.udf(x, *bvals) for x in ch.payload]
        charge_operator(ctx, self, ch.sim_cardinality, len(out))
        return ch.with_payload(out, ARRAY_CHANNEL, len(out))


class ArrayDbPlatform(Platform):
    """A minimal array-database platform, per the paper's recipe."""

    name = "arraydb"

    def channels(self):
        return [ARRAY_CHANNEL]

    def conversions(self):
        def into(ch, ctx):
            return ch.with_payload(list(ch.payload), ARRAY_CHANNEL,
                                   ch.actual_count)

        def outof(ch, ctx):
            return ch.with_payload(list(ch.payload), PY_COLLECTION,
                                   ch.actual_count)

        return [
            Conversion(PY_COLLECTION, ARRAY_CHANNEL, into, mb_per_s=300.0,
                       overhead_s=0.01, name="arraydb-import"),
            Conversion(ARRAY_CHANNEL, PY_COLLECTION, outof, mb_per_s=300.0,
                       overhead_s=0.01, name="arraydb-export"),
        ]

    def mappings(self):
        return [OperatorMapping(Map, lambda op: [ArrayMap(op)])]


class TestNewPlatform:
    def _ctx(self):
        from repro.platforms import builtin_platforms
        from repro.simulation import PlatformProfile, VirtualCluster

        cluster = VirtualCluster()
        cluster.set_profile(PlatformProfile(
            name="arraydb", startup_s=0.2, stage_overhead_s=0.01,
            parallelism=8, tuple_cost_s=1e-7, io_mb_per_s=400.0,
            net_mb_per_s=300.0, memory_cap_mb=8192.0))
        return RheemContext(cluster=cluster,
                            platforms=builtin_platforms()
                            + [ArrayDbPlatform()])

    def test_plan_can_run_on_the_new_platform(self):
        ctx = self._ctx()
        out = (ctx.load_collection([1, 2, 3])
               .map(lambda x: x + 10)
               .collect(allowed_platforms={"arraydb", "pystreams", "driver"}))
        assert out == [11, 12, 13]

    def test_optimizer_picks_it_when_it_is_cheapest(self):
        # arraydb's per-record cost (1e-7/8 lanes) beats every other
        # platform on a map-heavy pipeline over narrow records.
        ctx = self._ctx()
        res = (ctx.load_collection(list(range(500)), sim_factor=1e5,
                                   bytes_per_record=10)
               .map(lambda x: x + 1, name="m1")
               .map(lambda x: x * 2, name="m2")
               .map(lambda x: x - 3, name="m3")
               .execute())
        assert "arraydb" in res.platforms

    def test_reaches_every_platform_through_the_graph(self):
        # Two conversions suffice for full connectivity (paper: O(n), not
        # O(n*m) integration effort).
        ctx = self._ctx()
        for desc in ctx.graph.descriptors():
            if "broadcast" in desc.name:
                continue
            ctx.graph.cheapest_path(desc, ARRAY_CHANNEL, 1000, 100)
            ctx.graph.cheapest_path(ARRAY_CHANNEL, desc, 1000, 100)

    def test_cross_platform_mix_with_new_platform(self):
        # Relational source -> arraydb map -> driver collect.
        ctx = self._ctx()
        ctx.pgres.create_table("t", ["v"], [{"v": i} for i in range(10)],
                               sim_factor=1e5)
        out = (ctx.read_table("t")
               .map(lambda r: r["v"] * 3, name="triple")
               .with_target_platform("arraydb")
               .collect())
        assert sorted(out) == [v * 3 for v in range(10)]
