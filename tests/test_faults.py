"""Tests for cross-platform fault tolerance (failure injection + retries)."""

import pytest

from repro import RheemContext
from repro.core.faults import FaultInjector, PlatformFailure
from conftest import wordcount


def _task(ctx):
    ctx.vfs.write("hdfs://ft/lines.txt", ["a b", "b"], sim_factor=100.0)
    return wordcount(ctx, "hdfs://ft/lines.txt")


def _first_stage_id(ctx, dq):
    plan = ctx.optimizer().optimize(dq.to_plan())
    return plan.build_stages()[0].id


class TestFaultInjector:
    def test_planned_failures_then_success(self):
        injector = FaultInjector(failures={"s1": 2})
        assert injector.should_fail("s1", 0)
        assert injector.should_fail("s1", 1)
        assert not injector.should_fail("s1", 2)
        assert not injector.should_fail("other", 0)
        assert injector.injected == 2

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(probability=1.5)

    def test_probabilistic_failures_are_seeded(self):
        a = FaultInjector(probability=0.5, seed=3)
        b = FaultInjector(probability=0.5, seed=3)
        draws_a = [a.should_fail("s", 99) for __ in range(20)]
        draws_b = [b.should_fail("s", 99) for __ in range(20)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)


class TestStageRetries:
    def test_job_survives_injected_crashes(self):
        ctx = RheemContext()
        task = _task(ctx)
        # Build once to discover the (deterministic) first stage id.
        probe_ctx = RheemContext()
        stage_id = _first_stage_id(probe_ctx, _task(probe_ctx))
        injector = FaultInjector(failures={stage_id: 2})
        result = task.execute(fault_injector=injector, max_stage_retries=2)
        assert dict(result.output) == {"a": 1, "b": 2}
        assert injector.injected == 2

    def test_wasted_attempts_cost_simulated_time(self):
        clean_ctx = RheemContext()
        clean = _task(clean_ctx).execute()
        stage_id = _first_stage_id(RheemContext(), _task(RheemContext()))
        faulty_ctx = RheemContext()
        injector = FaultInjector(failures={stage_id: 2})
        faulty = _task(faulty_ctx).execute(fault_injector=injector,
                                           max_stage_retries=2)
        assert faulty.runtime > clean.runtime
        attempt_stages = [t for t in faulty.tracker.timings()
                          if ".attempt" in t.stage_id]
        assert len(attempt_stages) == 2

    def test_exceeding_retry_bound_raises(self):
        ctx = RheemContext()
        task = _task(ctx)
        stage_id = _first_stage_id(RheemContext(), _task(RheemContext()))
        injector = FaultInjector(failures={stage_id: 5})
        with pytest.raises(PlatformFailure):
            task.execute(fault_injector=injector, max_stage_retries=1)

    def test_chaos_run_still_correct(self):
        # Probabilistic crashes everywhere; generous retry budget.
        ctx = RheemContext()
        injector = FaultInjector(probability=0.6, seed=7)
        result = _task(ctx).execute(fault_injector=injector,
                                    max_stage_retries=25)
        assert dict(result.output) == {"a": 1, "b": 2}
        assert injector.injected > 0

    def test_loop_body_stages_retry_too(self):
        ctx = RheemContext()
        data = ctx.load_collection([1, 2]).cache()
        seed = ctx.load_collection([0])
        out = seed.repeat(3, lambda s, inv: s.map(lambda v: v + 1),
                          invariants=[data])
        injector = FaultInjector(probability=0.3, seed=11)
        result = out.execute(fault_injector=injector, max_stage_retries=10)
        assert result.output == [3]
        assert injector.injected > 0
