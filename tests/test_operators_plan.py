"""Tests for logical operators, UDF annotations and plan structure."""

import pytest

from repro.core import operators as ops
from repro.core.cardinality import CardinalityEstimate
from repro.core.operators import EstimationContext
from repro.core.plan import (
    PlanValidationError,
    RheemPlan,
    topological_order,
)
from repro.core.udf import Udf, as_udf
from repro.simulation import VirtualFileSystem


def _estimate(op, *input_values, ctx=None):
    inputs = [CardinalityEstimate.exact(v) for v in input_values]
    return op.estimate_cardinality(inputs, ctx or EstimationContext())


class TestUdf:
    def test_wraps_and_calls(self):
        udf = Udf(lambda x: x + 1, selectivity=0.5, cpu_weight=2.0)
        assert udf(1) == 2
        assert udf.selectivity == 0.5

    def test_as_udf_idempotent(self):
        udf = Udf(len)
        assert as_udf(udf) is udf
        assert isinstance(as_udf(len), Udf)

    def test_validation(self):
        with pytest.raises(ValueError):
            Udf(len, selectivity=-1)
        with pytest.raises(ValueError):
            Udf(len, cpu_weight=0)


class TestWiring:
    def test_connect_and_upstream(self):
        src = ops.CollectionSource([1, 2])
        mapped = ops.Map(lambda x: x)
        mapped.connect(0, src)
        assert mapped.upstream_ops == [src]

    def test_connect_bad_slot(self):
        with pytest.raises(ValueError):
            ops.Map(lambda x: x).connect(1, ops.CollectionSource([]))

    def test_broadcast_edges_tracked(self):
        src = ops.CollectionSource([1])
        side = ops.CollectionSource([2])
        mapped = ops.Map(lambda x, b: x)
        mapped.connect(0, src).broadcast(side)
        assert side in mapped.upstream_ops

    def test_with_target_platform(self):
        op = ops.Map(lambda x: x).with_target_platform("sparklite")
        assert op.target_platform == "sparklite"


class TestCardinalityEstimators:
    def test_map_passthrough(self):
        assert _estimate(ops.Map(lambda x: x), 100).geometric_mean == 100

    def test_filter_uses_hint(self):
        udf = Udf(lambda x: True, selectivity=0.25)
        assert _estimate(ops.Filter(udf), 100).geometric_mean == 25

    def test_filter_default_is_uncertain(self):
        est = _estimate(ops.Filter(lambda x: True), 100)
        assert est.confidence < 1.0
        assert est.lower < est.upper

    def test_flatmap_expansion_hint(self):
        udf = Udf(lambda x: [x] * 3, selectivity=3.0)
        assert _estimate(ops.FlatMap(udf), 100).geometric_mean == 300

    def test_sample_size_caps_at_input(self):
        assert _estimate(ops.Sample(size=50), 10).upper == 10
        assert _estimate(ops.Sample(size=5), 100).upper == 5

    def test_sample_fraction(self):
        assert _estimate(ops.Sample(fraction=0.1), 100).geometric_mean == \
            pytest.approx(10)

    def test_sample_requires_exactly_one_of_size_fraction(self):
        with pytest.raises(ValueError):
            ops.Sample()
        with pytest.raises(ValueError):
            ops.Sample(size=1, fraction=0.5)
        with pytest.raises(ValueError):
            ops.Sample(size=1, method="bogus")

    def test_reduce_and_count_are_singletons(self):
        assert _estimate(ops.GlobalReduce(lambda a, b: a), 1000).upper == 1
        assert _estimate(ops.Count(), 1000).upper == 1

    def test_union_adds(self):
        assert _estimate(ops.Union(), 10, 20).geometric_mean == 30

    def test_join_with_selectivity(self):
        est = _estimate(ops.Join(lambda x: x, lambda x: x,
                                 selectivity=0.01), 100, 100)
        assert est.geometric_mean == pytest.approx(100)

    def test_cartesian_is_product(self):
        assert _estimate(ops.CartesianProduct(), 10, 20).upper == 200

    def test_source_estimates_from_vfs(self):
        vfs = VirtualFileSystem()
        vfs.write("hdfs://f", ["a"] * 10, sim_factor=5.0)
        ctx = EstimationContext(vfs=vfs)
        src = ops.TextFileSource("hdfs://f")
        assert src.estimate_cardinality([], ctx).geometric_mean == 50

    def test_table_source_uses_catalog(self):
        ctx = EstimationContext(table_cardinalities={"t": 123.0})
        assert ops.TableSource("t").estimate_cardinality([], ctx).upper == 123

    def test_override_wins(self):
        op = ops.Map(lambda x: x)
        ctx = EstimationContext(overrides={op.id: CardinalityEstimate.exact(7)})
        assert op.estimate_cardinality(
            [CardinalityEstimate.exact(100)], ctx).upper == 7

    def test_filter_from_range(self):
        flt = ops.Filter.from_range("v", 5, 10)
        assert flt.udf({"v": 7}) and not flt.udf({"v": 11})
        assert (flt.column, flt.low, flt.high) == ("v", 5, 10)

    def test_inequality_condition_validation(self):
        with pytest.raises(ValueError):
            ops.InequalityCondition(lambda x: x, "!=", lambda x: x)
        cond = ops.InequalityCondition(lambda x: x, "<", lambda x: x)
        assert cond.holds(1, 2) and not cond.holds(2, 1)

    def test_iejoin_condition_arity(self):
        cond = ops.InequalityCondition(lambda x: x, "<", lambda x: x)
        with pytest.raises(ValueError):
            ops.IEJoin([])
        with pytest.raises(ValueError):
            ops.IEJoin([cond, cond, cond])


def _loop_plan(iterations=3):
    src = ops.CollectionSource(list(range(4)))
    seed = ops.CollectionSource([0])
    loop_in = [ops.LoopInput(0), ops.LoopInput(1)]
    body_map = ops.Map(lambda x: x + 1)
    body_map.connect(0, loop_in[0])
    body = ops.SubPlan(loop_in, [ops.InputRef(body_map, 0)])
    loop = ops.RepeatLoop(iterations, body, num_invariant_inputs=1)
    loop.connect(0, seed).connect(1, src)
    sink = ops.CollectionSink()
    sink.connect(0, loop)
    return RheemPlan([sink]), loop


class TestLoops:
    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            ops.RepeatLoop(0, ops.SubPlan([ops.LoopInput(0)], []))

    def test_body_arity_must_match(self):
        body = ops.SubPlan([ops.LoopInput(0)],
                           [ops.InputRef(ops.LoopInput(0), 0)])
        with pytest.raises(ValueError):
            ops.RepeatLoop(3, body, num_invariant_inputs=2)

    def test_subplan_input_indices_checked(self):
        with pytest.raises(ValueError):
            ops.SubPlan([ops.LoopInput(1)], [])

    def test_loop_estimate_uses_body(self):
        plan, loop = _loop_plan()
        cards = plan.estimate_cardinalities()
        assert cards[loop.id].geometric_mean == 1  # seed collection size


class TestPlan:
    def test_topological_order_producers_first(self):
        src = ops.CollectionSource([1])
        a = ops.Map(lambda x: x)
        a.connect(0, src)
        b = ops.Filter(lambda x: True)
        b.connect(0, a)
        order = topological_order([b])
        assert order == [src, a, b]

    def test_cycle_detection(self):
        a = ops.Map(lambda x: x)
        b = ops.Map(lambda x: x)
        a.connect(0, b)
        b.connect(0, a)
        with pytest.raises(PlanValidationError):
            topological_order([a])

    def test_plan_requires_sink(self):
        src = ops.CollectionSource([1])
        with pytest.raises(PlanValidationError):
            RheemPlan([src])

    def test_plan_rejects_unwired_input(self):
        sink = ops.CollectionSink()
        with pytest.raises(PlanValidationError):
            RheemPlan([sink])

    def test_consumers_map(self):
        src = ops.CollectionSource([1])
        a = ops.Map(lambda x: x)
        a.connect(0, src)
        b = ops.Map(lambda x: x)
        b.connect(0, src)
        sink_a, sink_b = ops.CollectionSink(), ops.CollectionSink()
        sink_a.connect(0, a)
        sink_b.connect(0, b)
        plan = RheemPlan([sink_a, sink_b])
        assert len(plan.consumers()[src.id]) == 2

    def test_operator_count_includes_loop_bodies(self):
        plan, __ = _loop_plan()
        assert plan.operator_count() == plan.operator_count(False) + 3

    def test_shared_subplan_counted_once(self):
        src = ops.CollectionSource([1])
        a = ops.Map(lambda x: x)
        a.connect(0, src)
        join = ops.Join(lambda x: x, lambda x: x)
        join.connect(0, a).connect(1, a)
        sink = ops.CollectionSink()
        sink.connect(0, join)
        plan = RheemPlan([sink])
        assert plan.operator_count(False) == 4
