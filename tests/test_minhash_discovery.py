"""Tests for MinHash and the Data Civilizer column-discovery pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro import RheemContext
from repro.algorithms import (
    hash_family,
    jaccard_estimate,
    merge_signatures,
    minhash_signature,
    value_hashes,
)
from repro.apps import find_similar_columns


class TestMinHash:
    def test_identical_sets_have_similarity_one(self):
        sig = minhash_signature(["a", "b", "c"])
        assert jaccard_estimate(sig, sig) == 1.0

    def test_disjoint_sets_have_low_similarity(self):
        a = minhash_signature(range(100), num_hashes=128)
        b = minhash_signature(range(1000, 1100), num_hashes=128)
        assert jaccard_estimate(a, b) < 0.1

    @given(st.sets(st.integers(0, 300), min_size=5, max_size=60),
           st.sets(st.integers(0, 300), min_size=5, max_size=60))
    def test_estimate_tracks_true_jaccard(self, a, b):
        true = len(a & b) / len(a | b)
        est = jaccard_estimate(minhash_signature(a, num_hashes=256),
                               minhash_signature(b, num_hashes=256))
        assert abs(est - true) < 0.25

    def test_signature_is_order_insensitive(self):
        assert minhash_signature([1, 2, 3]) == minhash_signature([3, 1, 2])

    def test_merge_is_associative_reducer(self):
        family = hash_family(32)
        xs = [value_hashes(v, family) for v in ("x", "y", "z")]
        left = merge_signatures(merge_signatures(xs[0], xs[1]), xs[2])
        right = merge_signatures(xs[0], merge_signatures(xs[1], xs[2]))
        assert left == right

    def test_validation(self):
        with pytest.raises(ValueError):
            hash_family(0)
        with pytest.raises(ValueError):
            jaccard_estimate((1, 2), (1,))


class TestColumnDiscovery:
    def test_finds_planted_duplicates_across_stores(self):
        ctx = RheemContext()
        emails = [f"user{i}@example.com" for i in range(300)]
        # Same values live in a Postgres column and an HDFS file column...
        ctx.pgres.create_table(
            "crm", ["email"], [{"email": e} for e in emails],
            sim_factor=1000.0)
        ctx.vfs.write("hdfs://lake/contacts.csv", emails, sim_factor=1000.0)
        # ...plus an unrelated numeric column.
        ctx.pgres.create_table(
            "metrics", ["v"], [{"v": i} for i in range(300)],
            sim_factor=1000.0)
        columns = {
            "crm.email": ctx.read_table("crm").map(lambda r: r["email"]),
            "lake.contacts": ctx.read_text_file("hdfs://lake/contacts.csv"),
            "metrics.v": ctx.read_table("metrics").map(lambda r: r["v"]),
        }
        pairs = find_similar_columns(ctx, columns, threshold=0.5)
        assert pairs, "the duplicate column pair must be discovered"
        best = pairs[0]
        assert {best[0], best[1]} == {"crm.email", "lake.contacts"}
        assert best[2] > 0.9
        reported = {(a, b) for a, b, __ in pairs}
        assert all("metrics.v" not in pair for pair in reported)

    def test_partial_overlap_scores_in_between(self):
        ctx = RheemContext()
        a = [f"k{i}" for i in range(200)]
        b = [f"k{i}" for i in range(100, 300)]  # ~33% Jaccard
        columns = {
            "a": ctx.load_collection(a),
            "b": ctx.load_collection(b),
        }
        pairs = find_similar_columns(ctx, columns, threshold=0.1,
                                     num_hashes=256)
        assert len(pairs) == 1
        assert 0.15 < pairs[0][2] < 0.55
