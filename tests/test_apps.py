"""Integration tests for the four applications of Section 2."""

import pytest

from repro import RheemContext
from repro.apps import (
    BigDansing,
    ML4all,
    XdbQuery,
    crocopr,
    q5_quanta,
    run_all_into_pgres,
    run_all_on_spark,
    run_polystore,
    sgd_hinge,
    tax_rule,
)
from repro.apps.ml4all import Algorithm
from repro.algorithms import pagerank_edges
from repro.workloads import (
    TpchLite,
    write_community,
    write_points,
    write_tax,
)
from repro.workloads.graphs import community_edges
from repro.workloads.tax import parse_tax


def _tax_data(ctx, count=200, sim_rows=10_000, violations=4):
    corrupted = write_tax(ctx, "hdfs://tax", count, sim_rows, violations)
    data = (ctx.read_text_file("hdfs://tax")
            .map(parse_tax, name="parse-tax", bytes_per_record=60))
    return data, corrupted


class TestBigDansing:
    def test_detects_exactly_the_planted_violators(self, ctx):
        data, corrupted = _tax_data(ctx)
        result = BigDansing(ctx).detect(data, tax_rule())
        offenders = {pair[0]["rid"] for pair in result.output}
        assert corrupted <= offenders
        # The planted offenders violate against MANY records; genuine pairs
        # among clean records are possible but every corrupted id must show.

    def test_iejoin_and_cartesian_agree(self, ctx):
        data, __ = _tax_data(ctx, count=80)
        fast = BigDansing(ctx).detect(data, tax_rule(), method="iejoin")
        ctx2 = RheemContext()
        data2, __ = _tax_data(ctx2, count=80)
        slow = BigDansing(ctx2).detect(data2, tax_rule(), method="cartesian")
        key = lambda p: (p[0]["rid"], p[1]["rid"])
        assert sorted(map(key, fast.output)) == sorted(map(key, slow.output))

    def test_iejoin_is_cheaper_than_cartesian(self, ctx):
        data, __ = _tax_data(ctx, sim_rows=200_000)
        fast = BigDansing(ctx).detect(data, tax_rule(), method="iejoin")
        ctx2 = RheemContext()
        data2, __ = _tax_data(ctx2, sim_rows=200_000)
        slow = BigDansing(ctx2).detect(data2, tax_rule(), method="cartesian")
        assert fast.runtime < slow.runtime / 5

    def test_repair_targets_corrupted_records(self, ctx):
        data, corrupted = _tax_data(ctx)
        result = BigDansing(ctx).repair(data, tax_rule())
        fixed_ids = {fix.rid for fix in result.output}
        assert corrupted <= fixed_ids
        assert all(fix.attribute == "tax" for fix in result.output)

    def test_unknown_method_rejected(self, ctx):
        data, __ = _tax_data(ctx)
        with pytest.raises(ValueError):
            BigDansing(ctx).detect(data, tax_rule(), method="magic")


class TestML4all:
    def test_sgd_learns_the_separator_direction(self, ctx):
        from repro.workloads.points import labelled_points
        lines, true_w = labelled_points(800, 3, noise=0.0, seed=11)
        ctx.vfs.write("hdfs://pts", lines, sim_factor=100.0,
                      bytes_per_record=60)
        result = ML4all(ctx).train("hdfs://pts", sgd_hinge(3, 0.1),
                                   iterations=300, sample_size=12)
        learned = result.output[0]
        cosine = (sum(a * b for a, b in zip(learned, true_w))
                  / (sum(a * a for a in learned) ** 0.5
                     * sum(b * b for b in true_w) ** 0.5))
        assert cosine > 0.8

    def test_convergence_based_training_stops_early(self, ctx):
        write_points(ctx, "hdfs://pts", "rcv1", percent=100)
        algo = sgd_hinge(12)
        algo.converge = lambda old, new: True  # converge on first compare
        result = ML4all(ctx).train("hdfs://pts", algo, iterations=500)
        # With an impossible-to-miss tolerance it stops almost immediately.
        iterations_run = sum(
            1 for t in result.tracker.timings() if ".it" in t.stage_id
        )
        assert iterations_run < 500

    def test_mixed_platform_beats_forced_spark(self, ctx):
        write_points(ctx, "hdfs://pts", "higgs", percent=100)
        free = ML4all(ctx).train("hdfs://pts", sgd_hinge(28), iterations=50)
        ctx2 = RheemContext()
        write_points(ctx2, "hdfs://pts", "higgs", percent=100)
        forced = ML4all(ctx2).train(
            "hdfs://pts", sgd_hinge(28), iterations=50,
            sample_method="random",
            allowed_platforms={"sparklite", "driver"})
        assert free.runtime < forced.runtime


class TestXdb:
    def test_query_builder_matches_manual_computation(self, ctx):
        rows = [{"k": i, "g": i % 3, "v": float(i)} for i in range(30)]
        ctx.pgres.create_table("m", ["k", "g", "v"], rows)
        out = (XdbQuery(ctx, "m").where("k", 10, None)
               .group_sum("g", lambda r: r["v"]).run())
        expected = {}
        for r in rows:
            if r["k"] >= 10:
                expected[r["g"]] = expected.get(r["g"], 0.0) + r["v"]
        assert dict(out.output) == expected

    def test_query_join(self, ctx):
        ctx.pgres.create_table("a", ["k", "x"],
                               [{"k": i, "x": i * 10} for i in range(5)])
        ctx.pgres.create_table("b", ["k", "y"],
                               [{"k": i % 2, "y": i} for i in range(4)])
        out = XdbQuery(ctx, "a").join(XdbQuery(ctx, "b"), "k", "k").run()
        assert all(row["k"] in (0, 1) for row in out.output)
        assert len(out.output) == 4

    def test_crocopr_equals_reference_pagerank(self, ctx):
        write_community(ctx, "hdfs://c1", 1, sim_mb=10.0)
        write_community(ctx, "hdfs://c2", 2, sim_mb=10.0)
        result = crocopr(ctx, "hdfs://c1", "hdfs://c2", iterations=10)
        shared = sorted(set(community_edges(1)) & set(community_edges(2)))
        reference = pagerank_edges(shared, iterations=10)
        got = dict(result.output)
        assert set(got) == set(reference)
        for vertex, rank in reference.items():
            assert got[vertex] == pytest.approx(rank)

    def test_crocopr_output_sorted_by_rank(self, ctx):
        write_community(ctx, "hdfs://c1", 1, sim_mb=10.0)
        write_community(ctx, "hdfs://c2", 2, sim_mb=10.0)
        result = crocopr(ctx, "hdfs://c1", "hdfs://c2")
        ranks = [rank for __, rank in result.output]
        assert ranks == sorted(ranks, reverse=True)


class TestDataCivQ5:
    def test_all_placements_agree_on_the_answer(self):
        answers = []
        for runner in (run_polystore, run_all_into_pgres, run_all_on_spark):
            outcome = runner(RheemContext(), sf=1)
            answers.append(sorted(outcome.result))
        assert answers[0] == answers[1] == answers[2]
        assert answers[0]  # non-empty revenue report

    def test_polystore_beats_load_into_postgres(self):
        direct = run_polystore(RheemContext(), sf=1)
        loaded = run_all_into_pgres(RheemContext(), sf=1)
        assert direct.runtime < loaded.runtime
        assert loaded.migration_s > 0

    def test_unknown_placement_rejected(self):
        ctx = RheemContext()
        TpchLite().place_for_q5(ctx)
        with pytest.raises(ValueError):
            q5_quanta(ctx, 1, "clay-tablets")


class TestMoreAlgorithms:
    def test_logistic_sgd_learns_direction(self, ctx):
        from repro.apps import logistic_sgd
        from repro.workloads.points import labelled_points
        lines, true_w = labelled_points(600, 3, noise=0.0, seed=21)
        ctx.vfs.write("hdfs://lg", lines, sim_factor=50.0,
                      bytes_per_record=60)
        result = ML4all(ctx).train("hdfs://lg", logistic_sgd(3, 0.5),
                                   iterations=250, sample_size=16)
        learned = result.output[0]
        cosine = (sum(a * b for a, b in zip(learned, true_w))
                  / (sum(a * a for a in learned) ** 0.5
                     * sum(b * b for b in true_w) ** 0.5))
        assert cosine > 0.8

    def test_kmeans_recovers_separated_clusters(self, ctx):
        import random
        from repro.apps import kmeans
        rng = random.Random(8)
        centers = [(-5.0, -5.0), (5.0, 5.0)]
        lines = []
        for __ in range(400):
            cx, cy = centers[rng.randrange(2)]
            lines.append(f"0,{cx + rng.gauss(0, 0.3)},"
                         f"{cy + rng.gauss(0, 0.3)}")
        ctx.vfs.write("hdfs://km", lines, sim_factor=100.0,
                      bytes_per_record=40)
        result = ML4all(ctx).train("hdfs://km", kmeans(2, k=2),
                                   iterations=60, sample_size=40)
        learned = sorted(result.output[0])
        for found, true in zip(learned, sorted(centers)):
            for f, t in zip(found, true):
                assert abs(f - t) < 1.0

    def test_kmeans_empty_cluster_keeps_centroid(self):
        from repro.apps.ml4all import kmeans
        algo = kmeans(2, k=2, seed=3)
        centroids = algo.stage()
        sums = (((0,) + (0.0, 0.0)), ((1,) + (4.0, 6.0)))
        updated = algo.update(sums, [centroids])
        assert updated[0] == centroids[0]       # empty: unchanged
        assert updated[1] == (4.0, 6.0)         # mean of the singleton
