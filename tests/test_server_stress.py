"""Stress tests for the concurrent job server: N workers x M jobs
hammering one serving layer.

Three properties are asserted over an 8-worker x 40-job mixed run:

* **span isolation** — every job's REST response carries exactly its own
  trace (one ``executor.run`` root; span counts matching a sequential
  run of the same document);
* **determinism** — each job's output is bit-for-bit identical to the
  same document executed sequentially on a fresh context, and a second
  concurrent run reproduces the first (unique per-job payloads make any
  cross-job contamination show up in the outputs);
* **shared-state consistency** — the caching layers serve every job
  (hits + misses add up, entries stay replayable) and the per-state
  counters account for every submission.

``REPRO_STRESS_BACKEND`` selects the server backend (``thread``, the
default, or ``process`` — one context replica per worker shard); the CI
``stress`` job runs this file once per backend with ``PYTHONHASHSEED``
pinned.  The shared-context assertions (direct ``server.ctx`` pokes)
only apply to the thread backend; the process backend is asserted
through the aggregated ``/metrics`` snapshot instead, since its state
lives across worker processes.
"""

import faulthandler
import json
import os
import sys

import pytest

from repro import RheemContext
from repro.api import RheemService
from repro.server import JobServer, JobState

WORKERS = 8
JOBS = 40

#: Which JobServer backend this run stresses (CI matrixes over both).
BACKEND = os.environ.get("REPRO_STRESS_BACKEND", "thread")

#: Per-test deadlock watchdog budget (seconds).  Generous — the whole
#: module runs in well under a minute — so it only ever fires on a hang.
WATCHDOG_S = float(os.environ.get("REPRO_STRESS_WATCHDOG_S", "120"))


@pytest.fixture(autouse=True)
def _deadlock_watchdog():
    """Dump every thread's stack if a test wedges, instead of letting CI
    time the whole job out silently.

    ``faulthandler.dump_traceback_later`` fires from a watchdog thread
    after ``WATCHDOG_S`` seconds with ``exit=True``: the process dies
    with all stacks on stderr, which is exactly the evidence a deadlock
    post-mortem needs.  Each test re-arms the timer; finishing cancels
    it.
    """
    faulthandler.dump_traceback_later(WATCHDOG_S, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(autouse=True)
def _aggressive_thread_switching():
    """Force frequent GIL handoffs so interleavings actually happen."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(previous)


def _make_context() -> RheemContext:
    ctx = RheemContext()
    ctx.vfs.write("hdfs://stress/corpus.txt",
                  ["to be or not to be", "that is the question"] * 10,
                  sim_factor=50.0)
    return ctx


def _wordcount_doc(i: int) -> dict:
    # Shared shape: repeated submissions hit the shared plan cache.
    return {
        "operators": [
            {"name": "lines", "kind": "textfile_source",
             "path": "hdfs://stress/corpus.txt"},
            {"name": "words", "kind": "flatmap", "input": "lines",
             "expr": "x.split()"},
            {"name": "pairs", "kind": "map", "input": "words",
             "expr": "(x, 1)"},
            {"name": "counts", "kind": "reduceby", "input": "pairs",
             "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
        ],
        "sink": {"name": "counts"},
    }


def _grouping_doc(i: int) -> dict:
    # Unique payload per job: a swapped or mixed-up channel would surface
    # as another job's numbers in this job's output.
    return {
        "operators": [
            {"name": "src", "kind": "collection_source",
             "data": list(range(i * 100, i * 100 + 24))},
            {"name": "keyed", "kind": "map", "input": "src",
             "expr": "(x % 5, x)"},
            {"name": "grouped", "kind": "reduceby", "input": "keyed",
             "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
        ],
        "sink": {"name": "grouped"},
    }


def _join_doc(i: int) -> dict:
    # Unique two-source join per job: exercises channel conversions and
    # the Steiner memo tables concurrently.
    left = [[k, k + i] for k in range(8)]
    right = [[k, k * i] for k in range(0, 8, 2)]
    return {
        "operators": [
            {"name": "left", "kind": "collection_source", "data": left},
            {"name": "right", "kind": "collection_source", "data": right},
            {"name": "joined", "kind": "join", "left": "left",
             "right": "right", "left_key": "x[0]", "right_key": "x[0]"},
            {"name": "flat", "kind": "map", "input": "joined",
             "expr": "(x[0][0], x[0][1] + x[1][1])"},
        ],
        "sink": {"name": "flat"},
    }


_SHAPES = (_wordcount_doc, _grouping_doc, _join_doc)


def _mixed_documents(count: int) -> list[dict]:
    return [_SHAPES[i % len(_SHAPES)](i) for i in range(count)]


def _canonical(output) -> str:
    return json.dumps(output, sort_keys=True)


def _count_spans(spans: list[dict], name: str) -> int:
    return sum((span["name"] == name)
               + _count_spans(span["children"], name) for span in spans)


def _run_sequential(documents: list[dict]) -> list[dict]:
    service = RheemService(_make_context())
    return [service.submit(doc) for doc in documents]


def _run_concurrent(documents: list[dict]) -> tuple[JobServer, list[dict]]:
    if BACKEND == "process":
        server = JobServer(workers=WORKERS, queue_size=len(documents),
                           backend="process",
                           context_factory=_make_context)
    else:
        server = JobServer(_make_context(), workers=WORKERS,
                           queue_size=len(documents))
    with server:
        handles = [server.submit(doc) for doc in documents]
        responses = [server.result(h.job_id, timeout=120) for h in handles]
    assert all(h.state is JobState.DONE for h in handles), \
        [(h.job_id, h.state) for h in handles]
    return server, responses


def test_stress_outputs_match_sequential_bit_for_bit():
    documents = _mixed_documents(JOBS)
    expected = _run_sequential(documents)
    assert all(r["status"] == "ok" for r in expected)
    server, responses = _run_concurrent(documents)
    for i, (response, reference) in enumerate(zip(responses, expected)):
        assert response["status"] == "ok", (i, response)
        assert _canonical(response["output"]) == \
            _canonical(reference["output"]), \
            f"job {i} output diverged from its sequential run"
        # Same platforms chosen under concurrency as sequentially — the
        # shared plan cache replayed, it did not cross wires.
        assert response["platforms"] == reference["platforms"], i


def test_stress_span_isolation():
    documents = _mixed_documents(JOBS)
    expected = _run_sequential(documents)
    __, responses = _run_concurrent(documents)
    for i, (response, reference) in enumerate(zip(responses, expected)):
        spans = response["trace"]["spans"]
        assert spans, f"job {i} returned no spans"
        # Exactly this job's execution — never zero (lost trace) and
        # never more than one (another job's spans bled in).
        assert _count_spans(spans, "executor.run") == 1, i
        # ... and exactly as many committed stages as the sequential run
        # of the same document produced.
        assert _count_spans(spans, "executor.run") == _count_spans(
            reference["trace"]["spans"], "executor.run")
        seq_stages = sum(
            s["name"].startswith("stage:")
            for root in reference["trace"]["spans"]
            for s in _walk(root))
        conc_stages = sum(
            s["name"].startswith("stage:")
            for root in spans for s in _walk(root))
        assert conc_stages == seq_stages, \
            f"job {i}: {conc_stages} stage spans vs {seq_stages} sequential"


def _walk(span: dict):
    yield span
    for child in span["children"]:
        yield from _walk(child)


def test_stress_shared_state_stays_consistent():
    documents = _mixed_documents(JOBS)
    server, responses = _run_concurrent(documents)

    if BACKEND == "process":
        # The caching state lives inside the worker shards; assert it
        # through the aggregated metrics instead of direct context pokes.
        # Every job either hit some shard's intermediate-result store or
        # performed exactly one plan-cache lookup on its home shard.
        merged = server.metrics_snapshot()["counters"]
        lookups = merged.get("plan_cache.hits", 0) + \
            merged.get("plan_cache.misses", 0)
        assert lookups <= JOBS
        assert merged.get("intermediate.hits", 0) >= JOBS - lookups
        # Sticky routing bounds cold misses: every unique document costs
        # one miss on its home shard, and the one repeated shape
        # (wordcount) can at worst spill cold onto each further shard
        # once.  Without stickiness, repeats would miss on every
        # resubmission and blow through this bound.
        unique = len({json.dumps(d, sort_keys=True) for d in documents})
        assert merged.get("plan_cache.misses", 0) <= unique + WORKERS - 1
    else:
        # Every job either hit the intermediate-result store (which
        # skips plan enumeration AND the plan-cache lookup) or performed
        # exactly one plan-cache lookup.  Concurrent first-submissions
        # of one shape may race to a duplicate miss, but the two layers
        # together must still account for every job, and the table must
        # still replay (snapshot stays well-formed).
        ctx = server.ctx
        stats = ctx.plan_cache.stats
        reuse = ctx.result_store.stats
        assert stats["hits"] + stats["misses"] <= JOBS
        assert reuse["hits"] >= JOBS - (stats["hits"] + stats["misses"])
        assert 0 < len(ctx.plan_cache) <= stats["misses"]
        snapshot = ctx.plan_cache.snapshot()
        assert snapshot["size"] == len(ctx.plan_cache)

    # Server accounting: every admitted job is done, nothing lingers.
    counters = server.metrics.snapshot()["counters"]
    assert counters["server.jobs.submitted"] == JOBS
    assert counters["server.jobs.done"] == JOBS
    assert counters.get("server.jobs.failed", 0) == 0
    assert counters.get("server.jobs.rejected", 0) == 0
    occupancy = server.snapshot()
    assert occupancy["queue_depth"] == 0
    assert occupancy["in_flight"] == 0
    assert occupancy["states"] == {"done": JOBS}
    histograms = server.metrics.snapshot()["histograms"]
    assert histograms["server.wait_s"]["count"] == JOBS
    assert histograms["server.run_s"]["count"] == JOBS


def test_stress_is_reproducible_across_runs():
    documents = _mixed_documents(JOBS)
    __, first = _run_concurrent(documents)
    __, second = _run_concurrent(documents)
    assert [_canonical(r["output"]) for r in first] == \
        [_canonical(r["output"]) for r in second]
