"""Regression tests for the hot-path correctness sweep.

Three bugs rode along with the vectorization refactor, each pinned here
by a test that fails on the pre-fix code:

* ``PySample`` seeded its RNG from a per-instance invocation counter, so
  a crash-retried attempt (or a re-execution of a cached plan) drew a
  different sample than a clean run — now it seeds from the
  loop-iteration epoch carried by the execution context.
* No-op operators (``PyCache``, the sinks) returned their *input*
  channel, aliasing one payload container into every consumer — now they
  detach with a shallow copy.
* ``PyUnion`` stamped its output with the left branch's
  ``bytes_per_record``, skewing every downstream IO/net cost when the
  branches had different record widths — now the width is the
  cardinality-weighted mean.
"""

import pytest

from repro import RheemContext
from repro.core import operators as ops
from repro.core.channels import Channel
from repro.core.execution import ExecutionContext
from repro.core.executor import Sniffer
from repro.core.faults import FaultInjector
from repro.platforms.base import union_bytes_per_record


def _compiled(ctx, dq):
    plan = dq.to_plan()
    exec_plan, cards = ctx.optimize(plan)
    return exec_plan, cards


class TestSampleRetryDeterminism:
    def _pipeline(self, ctx):
        return (ctx.load_collection(list(range(100)))
                .map(lambda x: x * 3)
                .sample(size=5))

    def _first_stage_id(self):
        ctx = RheemContext()
        exec_plan, __ = _compiled(ctx, self._pipeline(ctx))
        return exec_plan.build_stages(break_after=set())[0].id

    def test_retried_attempt_draws_the_identical_sample(self):
        """A crashed attempt must not advance the sampler's stream: the
        retry is a re-run of the same loop iteration, so it draws the
        same records a fault-free run would."""
        stage_id = self._first_stage_id()

        def run(failures):
            ctx = RheemContext()
            injector = FaultInjector(failures={stage_id: failures})
            return self._pipeline(ctx).execute(
                fault_injector=injector, max_stage_retries=2).output

        assert run(failures=2) == run(failures=0)

    def test_reexecuting_a_cached_plan_is_deterministic(self):
        """Cached plans share operator instances across executions; the
        sample must not depend on how often the instance has run."""
        ctx = RheemContext()
        exec_plan, cards = _compiled(ctx, self._pipeline(ctx))
        first = ctx.executor().execute(exec_plan, estimates=cards)
        second = ctx.executor().execute(exec_plan, estimates=cards)
        assert second.output == first.output
        assert second.runtime == first.runtime


class TestNoOpChannelAliasing:
    def test_cache_and_sink_detach_their_payloads(self):
        """A sniffer callback that mutates its view must not corrupt the
        job result: the sunk result list cannot alias the channel a
        no-op cache passed through."""
        ctx = RheemContext()
        dq = ctx.load_collection([1, 2, 3]).cache()
        tapped = []
        result = dq.execute(sniffers=[Sniffer(dq.op.id, tapped.append)])
        tapped[0].clear()
        assert result.output == [1, 2, 3]


class TestUnionRecordWidth:
    def test_weighted_width_helper(self):
        a = Channel(None, [0] * 10, 1.0, 100.0, 10)
        b = Channel(None, [0] * 30, 1.0, 20.0, 30)
        expected = (10 * 100.0 + 30 * 20.0) / 40
        assert union_bytes_per_record(a, b) == pytest.approx(expected)
        # Degenerate zero-cardinality union keeps the left width.
        empty_a = Channel(None, [], 1.0, 100.0, 0)
        empty_b = Channel(None, [], 1.0, 20.0, 0)
        assert union_bytes_per_record(empty_a, empty_b) == 100.0

    def test_py_union_output_width_is_cardinality_weighted(self):
        from repro.platforms.pystreams.channels import PY_COLLECTION
        from repro.platforms.pystreams.ops import PyUnion

        ctx = RheemContext()
        exec_ctx = ExecutionContext(cluster=ctx.cluster, pgres=ctx.pgres,
                                    config=ctx.config)
        wide = Channel(PY_COLLECTION, [0] * 10, 1.0, 100.0, 10)
        narrow = Channel(PY_COLLECTION, [0] * 30, 1.0, 20.0, 30)
        out = PyUnion(ops.Union()).execute([wide, narrow], [], exec_ctx)
        assert out.bytes_per_record == pytest.approx(40.0)
        # The simulated volume follows: 40 records x 40 B, not 40 x 100 B.
        assert out.sim_mb == pytest.approx(40 * 40.0 / 1e6)

    def test_batch_union_matches_scalar_union_width(self):
        from repro.core.batch import RecordBatch
        from repro.platforms.pystreams.batch_ops import PyBatchUnion
        from repro.platforms.pystreams.channels import PY_BATCH

        ctx = RheemContext()
        exec_ctx = ExecutionContext(cluster=ctx.cluster, pgres=ctx.pgres,
                                    config=ctx.config)
        wide = Channel(PY_BATCH, RecordBatch.from_records([0] * 10),
                       1.0, 100.0, 10)
        narrow = Channel(PY_BATCH, RecordBatch.from_records([0] * 30),
                         1.0, 20.0, 30)
        out = PyBatchUnion(ops.Union()).execute([wide, narrow], [], exec_ctx)
        assert out.bytes_per_record == pytest.approx(40.0)
