"""Tests for interval cardinality estimates."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cardinality import CardinalityEstimate


class TestConstruction:
    def test_exact(self):
        est = CardinalityEstimate.exact(42)
        assert est.is_exact
        assert est.geometric_mean == 42

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            CardinalityEstimate(10, 5)
        with pytest.raises(ValueError):
            CardinalityEstimate(-1, 5)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            CardinalityEstimate(1, 2, confidence=1.5)


class TestAlgebra:
    def test_scale(self):
        est = CardinalityEstimate(10, 20, 0.8).scale(2)
        assert (est.lower, est.upper) == (20, 40)
        assert est.confidence == 0.8

    def test_scale_confidence_decay(self):
        est = CardinalityEstimate(10, 20, 0.8).scale(1, confidence_decay=0.5)
        assert est.confidence == pytest.approx(0.4)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            CardinalityEstimate(1, 2).scale(-1)

    def test_plus_and_times(self):
        a = CardinalityEstimate(1, 2, 0.9)
        b = CardinalityEstimate(10, 20, 0.5)
        assert (a.plus(b).lower, a.plus(b).upper) == (11, 22)
        assert a.plus(b).confidence == 0.5
        assert (a.times(b).lower, a.times(b).upper) == (10, 40)

    def test_widen(self):
        est = CardinalityEstimate(10, 10, 1.0).widen(0.5, 2.0, 0.3)
        assert (est.lower, est.upper, est.confidence) == (5, 20, 0.3)

    def test_spread(self):
        assert CardinalityEstimate(5, 10).spread == 0.5
        assert CardinalityEstimate(0, 0).spread == 0.0

    @given(st.floats(1, 1e6), st.floats(1, 1e6))
    def test_geometric_mean_within_bounds(self, a, b):
        lo, hi = sorted((a, b))
        gm = CardinalityEstimate(lo, hi).geometric_mean
        assert lo <= gm + 1e-9 and gm <= hi + 1e-9


class TestMismatch:
    def test_within_tolerance_is_fine(self):
        est = CardinalityEstimate(100, 200)
        assert not est.mismatches(150)
        assert not est.mismatches(390, tolerance=2.0)  # 200*2 edge

    def test_outside_tolerance_flags(self):
        est = CardinalityEstimate(100, 200)
        assert est.mismatches(401, tolerance=2.0)
        assert est.mismatches(49, tolerance=2.0)

    def test_exact_estimate_with_large_actual(self):
        assert CardinalityEstimate.exact(10).mismatches(1000)
