"""Tests for the tracing/metrics subsystem and its exporters."""

import json

from repro import RheemContext
from repro.core.faults import FaultInjector
from repro.simulation.clock import CostMeter, CriticalPathTracker
from repro.trace import (
    NO_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    profile_summary,
    span_records,
    trace_block,
    write_chrome_trace,
    write_jsonl,
)
from conftest import wordcount


class FakeClock:
    """A deterministic clock: every read advances by one second."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestTracer:
    def test_spans_nest_and_time(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", job="wc") as outer:
            with tracer.span("inner"):
                pass
            outer.set("late", 1)
        (root,) = tracer.roots
        assert root.name == "outer"
        assert root.attributes == {"job": "wc", "late": 1}
        (child,) = root.children
        assert child.name == "inner"
        assert child.parent_id == root.span_id
        assert root.duration >= child.duration > 0
        assert root.start <= child.start

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (root,) = tracer.roots
        assert root.end is not None
        assert tracer.current() is None

    def test_walk_and_find(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "c"]
        assert [s.name for s in tracer.find("b")] == ["b"]
        assert tracer.find("nope") == []

    def test_null_tracer_records_nothing(self):
        with NO_TRACER.span("x", a=1) as span:
            span.set("b", 2)
        assert not NO_TRACER.enabled
        assert list(NO_TRACER.walk()) == []

    def test_real_tracer_is_enabled(self):
        assert Tracer().enabled


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2)
        registry.gauge("loss").set(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"jobs": 3}
        assert snap["gauges"] == {"loss": 0.25}

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        try:
            registry.counter("c").inc(-1)
        except ValueError:
            return
        raise AssertionError("negative increment accepted")

    def test_histogram_stats_and_reservoir_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for i in range(1000):
            hist.observe(float(i))
        assert hist.count == 1000
        assert hist.min == 0.0 and hist.max == 999.0
        assert len(hist.samples) <= 256
        stats = registry.snapshot()["histograms"]["h"]
        assert stats["count"] == 1000
        assert stats["mean"] > 0
        assert 0.0 <= hist.percentile(0.5) <= 999.0

    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")


class TestExporters:
    def _traced(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run", stages=1):
            with tracer.span("stage:s1"):
                pass
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(5)
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            lines = write_jsonl(handle, self._traced(), registry)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == lines == 3
        assert records[0]["name"] == "run"
        assert records[1]["parent"] == records[0]["id"]
        assert records[-1] == {"type": "metrics", "counters": {"n": 5},
                               "gauges": {}, "histograms": {}}

    def test_span_records_carry_attributes(self):
        records = span_records(self._traced())
        assert records[0]["attributes"] == {"stages": 1}

    def test_chrome_trace_two_timelines_and_lanes(self):
        tracker = CriticalPathTracker()
        fast, slow = CostMeter(), CostMeter()
        fast.charge(1.0, "a")
        slow.charge(5.0, "b")
        tracker.record("s1", [], fast)
        tracker.record("s2", [], slow)      # overlaps s1 -> second lane
        tracker.record("s3", ["s1"], fast)  # chains -> back to lane 1
        doc = chrome_trace(self._traced(), [tracker])
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"run", "stage:s1", "s1", "s2", "s3"} <= names
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e.get("ph") == "X" and e["pid"] == 2}
        assert by_name["s1"]["tid"] != by_name["s2"]["tid"]
        assert by_name["s3"]["tid"] == by_name["s1"]["tid"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == \
            {"driver (wall-clock)", "job 0 (simulated)"}

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        with open(path, "w") as handle:
            write_chrome_trace(handle, self._traced(), [])
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"

    def test_trace_block_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        block = trace_block(self._traced(), registry)
        assert block["spans"][0]["name"] == "run"
        assert block["spans"][0]["children"][0]["name"] == "stage:s1"
        assert block["metrics"]["counters"] == {"c": 1}

    def test_profile_summary_renders_tree_and_metrics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        text = profile_summary(self._traced(), registry)
        assert "stage:s1" in text and "c" in text and "n=1" in text


class TestTracedExecution:
    """Acceptance: a traced optimize+execute run exports a well-formed
    Chrome trace covering all optimizer phases and every stage attempt."""

    def test_full_job_trace_with_retries(self, tmp_path):
        probe = RheemContext()
        probe.vfs.write("hdfs://t/l.txt", ["a b", "b"], sim_factor=100.0)
        stage_id = (probe.optimizer()
                    .optimize(wordcount(probe, "hdfs://t/l.txt").to_plan())
                    .build_stages()[0].id)

        ctx = RheemContext()
        tracer = ctx.enable_tracing()
        ctx.vfs.write("hdfs://t/l.txt", ["a b", "b"], sim_factor=100.0)
        injector = FaultInjector(failures={stage_id: 2})
        result = wordcount(ctx, "hdfs://t/l.txt").execute(
            fault_injector=injector, max_stage_retries=2)
        assert dict(result.output) == {"a": 1, "b": 2}

        doc = chrome_trace(tracer, [result.tracker], ctx.metrics)
        path = tmp_path / "job.trace.json"
        path.write_text(json.dumps(doc))
        doc = json.loads(path.read_text())

        names = {e["name"] for e in doc["traceEvents"]}
        for phase in ("optimizer.inflate", "optimizer.estimate",
                      "optimizer.movement", "optimizer.enumerate"):
            assert phase in names
        # Wall-clock side: one attempt span per try (2 failures + success).
        for attempt in ("attempt0", "attempt1", "attempt2"):
            assert attempt in names
        # Simulated side: the wasted attempts occupy the critical path.
        assert f"{stage_id}.attempt0" in names
        assert f"{stage_id}.attempt1" in names
        assert stage_id in names
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0
                assert {"name", "pid", "tid", "args"} <= set(event)
        counters = doc["otherData"]["counters"]
        assert counters["executor.retries_wasted"] == 2
        assert counters["optimizer.plans_enumerated"] > 0
        assert counters["optimizer.plans_pruned"] > 0
        assert counters["optimizer.conversion_paths_solved"] > 0

    def test_rest_response_carries_trace_block(self):
        from repro.api import RheemService

        service = RheemService()
        document = {
            "operators": [
                {"name": "src", "kind": "collection_source",
                 "data": [1, 2, 3]},
                {"name": "sq", "kind": "map", "input": "src",
                 "expr": "x * x"},
            ],
            "sink": {"name": "sq"},
        }
        response = service.submit(document)
        assert response["status"] == "ok"
        trace = response["trace"]
        span_names = {s["name"] for s in _walk_json_spans(trace["spans"])}
        assert "optimizer.enumerate" in span_names
        assert "executor.run" in span_names
        assert trace["metrics"]["counters"]["executor.stages"] >= 1
        json.dumps(response)  # JSON-serializable end to end

    def test_disabled_tracing_leaves_no_spans(self):
        ctx = RheemContext()
        ctx.load_collection([1, 2]).map(lambda x: x + 1).collect()
        assert not ctx.tracer.enabled


def _walk_json_spans(spans):
    for span in spans:
        yield span
        yield from _walk_json_spans(span.get("children", []))


class TestCliTrace:
    SCRIPT = """
        lines = load 'hdfs://data/abstracts.txt';
        words = flatmap lines -> { x.split() };
        n = count words;
        dump n;
    """

    def test_trace_subcommand_writes_chrome_file(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "wc.latin"
        script.write_text(self.SCRIPT)
        out = tmp_path / "job.trace.json"
        code = main(["trace", str(script), "--abstracts", "1",
                     "--out", str(out)])
        assert code == 0
        assert "trace events" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "optimizer.enumerate" in names and "executor.run" in names

    def test_trace_default_output_path(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "wc.latin"
        script.write_text(self.SCRIPT)
        assert main(["trace", str(script), "--abstracts", "1"]) == 0
        assert (tmp_path / "wc.latin.trace.json").exists()

    def test_run_profile_prints_summary(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "wc.latin"
        script.write_text(self.SCRIPT)
        code = main(["run", str(script), "--abstracts", "1", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wall-clock spans:" in out
        assert "optimizer.enumerate" in out
        assert "job 0 (simulated" in out
