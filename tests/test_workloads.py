"""Tests for the synthetic workload generators."""

import pytest

from repro import RheemContext
from repro.workloads import (
    TpchLite,
    community_edges,
    labelled_points,
    parse_edge,
    parse_point,
    parse_tax,
    power_law_edges,
    tax_records,
    write_abstracts,
    write_community,
    write_pagelinks,
    write_points,
    write_tax,
    zipf_lines,
)
from repro.workloads.tpch import ACTUAL_ROWS, parse_row


class TestText:
    def test_zipf_is_skewed_and_deterministic(self):
        lines = zipf_lines(500, vocabulary=100, seed=1)
        assert lines == zipf_lines(500, vocabulary=100, seed=1)
        counts = {}
        for line in lines:
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
        assert counts["w0"] > counts.get("w50", 0)

    def test_write_abstracts_scales_percent(self):
        ctx = RheemContext()
        write_abstracts(ctx, "hdfs://a", percent=10)
        write_abstracts(ctx, "hdfs://b", percent=100)
        a = ctx.vfs.read("hdfs://a").sim_record_count
        b = ctx.vfs.read("hdfs://b").sim_record_count
        assert b == pytest.approx(10 * a)

    def test_percent_validation(self):
        with pytest.raises(ValueError):
            write_abstracts(RheemContext(), "hdfs://x", percent=0)


class TestPoints:
    def test_points_are_roughly_separable(self):
        lines, true_w = labelled_points(300, 4, noise=0.0, seed=2)
        correct = 0
        for line in lines:
            label, *xs = parse_point(line)
            margin = sum(w * x for w, x in zip(true_w, xs))
            correct += (margin > 0) == (label > 0)
        assert correct == 300

    def test_dataset_catalog(self):
        ctx = RheemContext()
        spec = write_points(ctx, "hdfs://p", "higgs", percent=50)
        assert spec.dimensions == 28
        vf = ctx.vfs.read("hdfs://p")
        assert vf.sim_record_count == pytest.approx(5_500_000)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            write_points(RheemContext(), "hdfs://p", "imagenet")


class TestGraphs:
    def test_power_law_no_self_loops(self):
        edges = power_law_edges(500, 50, seed=3)
        assert len(edges) == 500
        assert all(a != b for a, b in edges)

    def test_hubs_attract_more_edges(self):
        edges = power_law_edges(2000, 100, seed=4)
        degree = {}
        for a, b in edges:
            degree[b] = degree.get(b, 0) + 1
        assert degree.get(0, 0) > degree.get(90, 0)

    def test_communities_share_edges(self):
        a = set(community_edges(1, seed=5))
        b = set(community_edges(2, seed=5))
        assert a & b          # non-trivial intersection
        assert a - b and b - a  # but not identical

    def test_write_helpers_set_sim_sizes(self):
        ctx = RheemContext()
        write_pagelinks(ctx, "hdfs://g", percent=10)
        assert ctx.vfs.read("hdfs://g").sim_record_count == \
            pytest.approx(17_000_000)
        write_community(ctx, "hdfs://c", 1, sim_mb=200.0)
        assert ctx.vfs.read("hdfs://c").sim_mb == pytest.approx(200.0)

    def test_parse_edge(self):
        assert parse_edge("3 5") == (3, 5)


class TestTax:
    def test_violations_are_detectable(self):
        records, corrupted = tax_records(200, violations=5, seed=6)
        assert len(corrupted) == 5
        clean = [r for r in records if r.rid not in corrupted]
        dirty = [records[rid] for rid in corrupted]
        for bad in dirty:
            # A corrupted record out-earns and under-pays some clean record.
            assert any(bad.salary > c.salary and bad.tax < c.tax
                       for c in clean)

    def test_clean_records_satisfy_constraint(self):
        records, corrupted = tax_records(100, violations=0, seed=7)
        clean = sorted(records, key=lambda r: r.salary)
        for earlier, later in zip(clean, clean[1:]):
            assert not (later.salary > earlier.salary
                        and later.tax < earlier.tax)

    def test_write_and_parse_roundtrip(self):
        ctx = RheemContext()
        corrupted = write_tax(ctx, "hdfs://tax", 50, sim_rows=5000,
                              violations=3)
        rows = [parse_tax(l) for l in ctx.vfs.read("hdfs://tax").records]
        assert len(rows) == 50
        assert {r["rid"] for r in rows} >= corrupted

    def test_too_many_violations_rejected(self):
        with pytest.raises(ValueError):
            tax_records(5, violations=6)


class TestTpch:
    def test_row_counts_and_sim_factors(self):
        gen = TpchLite(scale_factor=10)
        assert len(gen.lineitem()) == ACTUAL_ROWS["lineitem"]
        assert gen.sim_factor("lineitem") == pytest.approx(
            60_000_000 / ACTUAL_ROWS["lineitem"])

    def test_foreign_keys_resolve(self):
        gen = TpchLite()
        orders = {o["orderkey"] for o in gen.orders()}
        customers = {c["custkey"] for c in gen.customer()}
        suppliers = {s["suppkey"] for s in gen.supplier()}
        for item in gen.lineitem():
            assert item["orderkey"] in orders
            assert item["suppkey"] in suppliers
        for order in gen.orders():
            assert order["custkey"] in customers

    def test_csv_roundtrip(self):
        gen = TpchLite()
        row = gen.lineitem()[0]
        from repro.workloads.tpch import _to_csv
        assert parse_row("lineitem", _to_csv("lineitem", row)) == row

    def test_placements(self):
        ctx = RheemContext()
        TpchLite().place_for_q5(ctx)
        assert ctx.vfs.exists("hdfs://tpch/lineitem.csv")
        assert ctx.vfs.exists("file://tpch/nation.csv")
        assert ctx.pgres.has_table("customer")
        assert not ctx.pgres.has_table("lineitem")
