"""The static plan analyzer: typeflow, UDF introspection, lint rules,
structural validation and the surfaces that expose diagnostics (optimizer,
CLI, REST, studio)."""

import random

import pytest

from repro import RheemContext
from repro.analysis import (
    Severity,
    all_rules,
    analyze_plan,
    introspect_udf,
)
from repro.analysis.collector import collecting
from repro.analysis.typeflow import (
    ANY,
    NUMBER,
    TEXT,
    QType,
    compatible,
    list_of,
    pair_of,
)
from repro.core import operators as ops
from repro.core.optimizer import OptimizationError, PlanAnalysisError
from repro.core.plan import PlanValidationError, RheemPlan, topological_order
from repro.core.udf import Udf


@pytest.fixture
def ctx():
    return RheemContext()


# ---------------------------------------------------------------- typeflow
class TestTypeflow:
    def test_compatibility_lattice(self):
        assert compatible(ANY, NUMBER)
        assert compatible(NUMBER, ANY)
        assert compatible(pair_of(TEXT, NUMBER), pair_of(TEXT, NUMBER))
        assert not compatible(TEXT, NUMBER)
        assert not compatible(pair_of(TEXT, NUMBER), pair_of(NUMBER, TEXT))
        # unparameterized tuple matches any arity
        assert compatible(QType("tuple"), pair_of(TEXT, NUMBER))
        assert compatible(list_of(NUMBER), list_of(ANY))

    def test_annotated_udf_chain_is_typed(self, ctx):
        def parse(line: str) -> float:
            return float(line)

        plan = ctx.read_text_file("hdfs://x.txt").map(parse).to_plan()
        report = analyze_plan(plan)
        assert report.ok

    def test_type_mismatch_is_an_error(self, ctx):
        def shout(s: str) -> str:
            return s.upper()

        plan = ctx.load_collection([1, 2, 3]).map(shout).to_plan()
        report = analyze_plan(plan)
        assert "RP002" in report.rule_ids()
        assert not report.ok

    def test_untyped_lambdas_never_error(self, ctx):
        plan = (ctx.load_collection([1, 2, 3])
                .map(lambda x: str(x)).filter(lambda s: s).to_plan())
        assert analyze_plan(plan).ok


# ------------------------------------------------------- udf introspection
class TestUdfIntrospection:
    def test_pure_udf_is_clean(self):
        report = introspect_udf(lambda x: x * 2)
        assert report.clean

    def test_nondeterminism_is_detected(self):
        report = introspect_udf(lambda x: x + random.random())
        assert "random" in report.nondeterministic_calls

    def test_mutable_closure_capture_is_detected(self):
        seen = []

        def track(x):
            seen.append(x)
            return x

        report = introspect_udf(track)
        assert report.mutable_captures

    def test_global_write_is_detected(self):
        src = "def bump(x):\n    global counter\n    counter = x\n    return x"
        env = {}
        exec(src, env)
        report = introspect_udf(env["bump"])
        assert "counter" in report.global_writes

    def test_impure_udf_decays_confidence(self, ctx):
        plan = (ctx.load_collection(list(range(10)))
                .map(lambda x: x * random.random()).to_plan())
        report = analyze_plan(plan, ctx)
        assert report.confidence_penalties
        optimizer = ctx.optimizer()
        best, cards = optimizer.pick_best(plan)
        map_op = next(op for op in plan.operators() if op.name == "map")
        clean_ctx = RheemContext()
        clean = (clean_ctx.load_collection(list(range(10)))
                 .map(lambda x: x * 2.0).to_plan())
        __, clean_cards = clean_ctx.optimizer().pick_best(clean)
        clean_map = next(op for op in clean.operators() if op.name == "map")
        assert (cards[map_op.id].confidence
                < clean_cards[clean_map.id].confidence)


# ---------------------------------------------------------------- rules
class TestRules:
    def test_registry_is_severity_tiered(self):
        rules = all_rules()
        ids = {r.rule_id for r in rules}
        assert {"RP001", "RP003", "RP005", "RP011"} <= ids
        assert len(ids) >= 10
        assert any(r.severity == Severity.ERROR for r in rules)
        assert any(r.severity == Severity.WARNING for r in rules)
        assert any(r.severity == Severity.INFO for r in rules)

    def test_dead_operator(self, ctx):
        dq = ctx.load_collection([1, 2, 3])
        dq.map(lambda x: -x)  # dangling branch
        plan = dq.map(lambda x: x + 1).to_plan()
        report = analyze_plan(plan)
        assert "RP001" in report.rule_ids()

    def test_cartesian_without_restriction(self, ctx):
        left = ctx.load_collection([1, 2])
        right = ctx.load_collection([3, 4])
        plan = left.cartesian(right).to_plan()
        assert "RP003" in analyze_plan(plan).rule_ids()

    def test_filtered_cartesian_is_quiet(self, ctx):
        left = ctx.load_collection([1, 2])
        right = ctx.load_collection([3, 4])
        plan = (left.cartesian(right)
                .filter(lambda t: t[0] < t[1]).to_plan())
        assert "RP003" not in analyze_plan(plan).rule_ids()

    def test_uncached_loop_invariant(self, ctx):
        inv = ctx.load_collection(list(range(5))).map(lambda x: x * 2)
        dq = ctx.load_collection([1.0]).repeat(
            3, lambda v, i: v.map(lambda x: x + 1), invariants=[inv])
        report = analyze_plan(dq.to_plan())
        assert "RP004" in report.rule_ids()

    def test_cached_loop_invariant_is_quiet(self, ctx):
        inv = ctx.load_collection(list(range(5))).map(lambda x: x * 2).cache()
        dq = ctx.load_collection([1.0]).repeat(
            3, lambda v, i: v.map(lambda x: x + 1), invariants=[inv])
        report = analyze_plan(dq.to_plan())
        assert "RP004" not in report.rule_ids()

    def test_platform_capability_mismatch(self, ctx):
        dq = ctx.load_collection([(1, 2)]).pagerank(iterations=2)
        dq.op.with_target_platform("pgres")  # pgres cannot run pagerank
        plan = dq.to_plan()
        report = analyze_plan(plan, ctx)
        assert "RP005" in report.rule_ids()
        with pytest.raises(PlanAnalysisError):
            ctx.optimizer().pick_best(plan)

    def test_duplicate_source_scan(self, ctx):
        a = ctx.read_text_file("hdfs://data/x.txt")
        b = ctx.read_text_file("hdfs://data/x.txt")
        plan = a.union(b).to_plan()
        assert "RP007" in analyze_plan(plan).rule_ids()

    def test_nondeterministic_udf(self, ctx):
        plan = (ctx.load_collection([1, 2])
                .map(lambda x: x * random.random()).to_plan())
        assert "RP009" in analyze_plan(plan).rule_ids()

    def test_missing_selectivity_hint_and_udf_fix(self, ctx):
        noisy = ctx.load_collection([1, 2]).filter(lambda x: x > 1).to_plan()
        assert "RP011" in analyze_plan(noisy).rule_ids()
        quiet = (ctx.load_collection([1, 2])
                 .filter(Udf(lambda x: x > 1, selectivity=0.5)).to_plan())
        assert "RP011" not in analyze_plan(quiet).rule_ids()

    def test_union_type_divergence(self, ctx):
        nums = ctx.load_collection([1, 2, 3])
        texts = ctx.load_collection(["a", "b"])
        plan = nums.union(texts).to_plan()
        assert "RP012" in analyze_plan(plan).rule_ids()

    def test_unused_loop_input(self, ctx):
        inv = ctx.load_collection([9]).cache()
        dq = ctx.load_collection([1.0]).repeat(
            2, lambda v, i: v.map(lambda x: x + 1),  # ignores the invariant
            invariants=[inv])
        assert "RP013" in analyze_plan(dq.to_plan()).rule_ids()

    def test_suppression_is_per_operator(self, ctx):
        left = ctx.load_collection([1, 2])
        right = ctx.load_collection([3, 4])
        cart = left.cartesian(right)
        cart.op.suppress_lint("RP003")
        assert "RP003" not in analyze_plan(cart.to_plan()).rule_ids()


# ---------------------------------------------------- structural validation
class TestValidation:
    def test_validate_collects_all_violations(self):
        broken_a = ops.Map(Udf(lambda x: x))          # input 0 unwired
        sink_a = ops.CollectionSink()
        sink_a.connect(0, broken_a)
        broken_b = ops.Filter(Udf(lambda x: x))       # input 0 unwired
        sink_b = ops.CollectionSink()
        sink_b.connect(0, broken_b)
        with pytest.raises(PlanValidationError) as err:
            RheemPlan([sink_a, sink_b])
        diags = err.value.diagnostics
        # both unwired inputs AND the missing source, in one raise
        assert len(diags) >= 3
        assert {d.rule_id for d in diags} == {"RP100", "RP103"}
        assert all(d.severity == Severity.ERROR for d in diags)

    def test_cycle_detection_via_side_input(self, ctx):
        dq = ctx.load_collection([1]).map(lambda x: x)
        plan = dq.map(lambda x: x).to_plan()
        topo = plan.operators()
        # wire a feedback edge after construction: analysis must re-traverse
        topo[1].broadcast(topo[2])
        report = analyze_plan(plan)
        assert "RP102" in report.rule_ids()
        assert not report.ok

    def test_topological_order_handles_5000_operators(self, ctx):
        dq = ctx.load_collection([1])
        for __ in range(5000):
            dq = dq.map(lambda x: x)
        plan = dq.to_plan()  # would overflow a recursive traversal
        ordered = topological_order(plan.sinks)
        assert len(ordered) == 5002  # source + 5000 maps + sink
        assert analyze_plan(plan).ok


# ------------------------------------------------------------- optimizer
class TestOptimizerIntegration:
    def test_errors_abort_before_enumeration(self, ctx):
        def shout(s: str) -> str:
            return s.upper()

        plan = ctx.load_collection([1, 2]).map(shout).to_plan()
        with pytest.raises(PlanAnalysisError) as err:
            ctx.optimizer().pick_best(plan)
        assert isinstance(err.value, OptimizationError)
        assert "RP002" in {d.rule_id for d in err.value.report.errors}

    def test_warnings_annotate_but_do_not_abort(self, ctx):
        dq = ctx.load_collection([1, 2]).map(lambda x: x * random.random())
        result = dq.execute()
        assert "RP009" in {d.rule_id for d in result.diagnostics}

    def test_analysis_can_be_disabled(self, ctx):
        def shout(s: str) -> str:
            return s.upper()

        plan = ctx.load_collection([1, 2]).map(shout).to_plan()
        optimizer = ctx.optimizer()
        optimizer.analysis = False
        best, __ = optimizer.pick_best(plan)  # no PlanAnalysisError
        assert best is not None


# ----------------------------------------------------------- surfaces
class TestSurfaces:
    def test_rest_response_carries_diagnostics(self):
        from repro.api import RheemService

        service = RheemService()
        doc = {
            "operators": [
                {"name": "nums", "kind": "collection_source",
                 "data": [1, 2, 3]},
                {"name": "kept", "kind": "filter", "input": "nums",
                 "expr": "x > 1"},
            ],
            "sink": {"name": "kept"},
        }
        response = service.submit(doc)
        assert response["status"] == "ok"
        rules = {d["rule"] for d in response["diagnostics"]}
        assert "RP011" in rules  # filter without selectivity hint

    def test_studio_colors_flagged_nodes(self, ctx):
        from repro.studio import plan_to_dot, render_diagnostics

        plan = (ctx.load_collection([1, 2])
                .map(lambda x: x * random.random()).to_plan())
        analyze_plan(plan)
        dot = plan_to_dot(plan)
        assert "fillcolor" in dot and "RP009" in dot
        assert "RP009" in render_diagnostics(plan)

    def test_collector_catches_unoptimized_plans(self, ctx):
        with collecting() as collector:
            ctx.load_collection([1, 2]).filter(lambda x: x).to_plan()
            reports = collector.finalize()
        assert len(reports) == 1
        __, report = reports[0]
        assert "RP011" in report.rule_ids()


# ----------------------------------------------------------------- CLI
class TestCliLint:
    def _lint(self, tmp_path, source, name="script.py"):
        from repro.__main__ import main

        script = tmp_path / name
        script.write_text(source)
        return main(["lint", str(script)])

    def test_no_subcommand_exits_2(self, capsys):
        from repro.__main__ import main

        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_run_parses_seed_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "wc.latin"
        script.write_text("""
            lines = load 'hdfs://data/abstracts.txt';
            n = count lines;
            dump n;
        """)
        assert main(["run", str(script), "--abstracts", "1"]) == 0
        assert "n:" in capsys.readouterr().out

    def test_serve_parser_rejects_bad_port(self):
        from repro.__main__ import main

        # bad port type must be an argparse error (exit 2), not a crash
        with pytest.raises(SystemExit) as err:
            main(["serve", "--port", "not-a-number"])
        assert err.value.code == 2

    def test_lint_clean_script_exits_0(self, tmp_path, capsys):
        code = self._lint(tmp_path, """
from repro import RheemContext

ctx = RheemContext()
out = ctx.load_collection([1, 2, 3]).map(lambda x: x + 1).collect()
""")
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_bad_plan_reports_both_rules_and_fails(self, tmp_path,
                                                        capsys):
        code = self._lint(tmp_path, """
from repro import RheemContext

ctx = RheemContext()
dq = ctx.load_collection([1, 2, 3])
dq.map(lambda x: -x)  # dead branch

def as_num(x: str) -> float:
    return float(x)

dq.map(as_num).collect()
""")
        out = capsys.readouterr().out
        assert code == 1
        assert "RP002" in out and "RP001" in out
        assert "<#" in out  # operator locations

    def test_lint_latin_script(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "wc.latin"
        script.write_text("""
            lines = load 'hdfs://data/abstracts.txt';
            words = flatmap lines -> { x.split() };
            n = count words;
            dump n;
        """)
        assert main(["lint", str(script), "--abstracts", "1"]) == 0
        assert "plan" in capsys.readouterr().out
