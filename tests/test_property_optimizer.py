"""Property-based tests for the enumerator over randomized pipelines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RheemContext

# Each step is (verb, parameter); pipelines are arbitrary sequences.
steps = st.lists(
    st.sampled_from([
        ("map", 2), ("map", 3),
        ("filter", 2), ("filter", 3),
        ("distinct", None),
        ("sort", None),
        ("pair", 4),
        ("reduceby", 4),
    ]),
    max_size=5,
)


def _build(ctx, pipeline, sim_factor):
    dq = ctx.load_collection(list(range(60)), sim_factor=sim_factor)
    paired = False
    for verb, param in pipeline:
        if verb == "map" and not paired:
            dq = dq.map(lambda x, __p=param: x * __p)
        elif verb == "filter" and not paired:
            dq = dq.filter(lambda x, __p=param: x % __p != 0)
        elif verb == "distinct":
            dq = dq.distinct()
        elif verb == "sort" and not paired:
            dq = dq.sort()
        elif verb == "pair" and not paired:
            dq = dq.map(lambda x, __p=param: (x % __p, x))
            paired = True
        elif verb == "reduceby" and paired:
            dq = dq.reduce_by_key(lambda t: t[0],
                                  lambda a, b: (a[0], a[1] + b[1]))
            dq = dq.map(lambda t: t[1])  # back to plain integers
            paired = False
    return dq


class TestRandomPipelines:
    @given(steps, st.sampled_from([1.0, 10_000.0]))
    @settings(max_examples=25)
    def test_results_identical_across_platforms(self, pipeline, sim_factor):
        outputs = []
        for platform in ("pystreams", "sparklite", "flinklite"):
            ctx = RheemContext()
            out = _build(ctx, pipeline, sim_factor).collect(
                allowed_platforms={platform, "driver"})
            outputs.append(sorted(out, key=repr))
        assert outputs[0] == outputs[1] == outputs[2]

    @given(steps, st.sampled_from([1.0, 50_000.0]))
    @settings(max_examples=20)
    def test_pruning_is_lossless(self, pipeline, sim_factor):
        ctx = RheemContext()
        plan = _build(ctx, pipeline, sim_factor).to_plan()
        pruned = ctx.optimizer()
        best_pruned, __ = pruned.pick_best(plan)
        full = ctx.optimizer()
        full.prune = False
        best_full, __ = full.pick_best(plan)
        assert best_pruned.cost.geometric_mean == pytest.approx(
            best_full.cost.geometric_mean)
        assert pruned.last_enumeration_size <= full.last_enumeration_size

    @given(steps, st.sampled_from([1.0, 50_000.0]))
    @settings(max_examples=20)
    def test_free_choice_estimated_at_most_any_forced(self, pipeline,
                                                      sim_factor):
        # The enumerator's optimum over ALL platforms can never have a
        # higher estimated cost than the optimum restricted to one.
        ctx = RheemContext()
        plan = _build(ctx, pipeline, sim_factor).to_plan()
        free, __ = ctx.optimizer().pick_best(plan)
        for platform in ("pystreams", "flinklite"):
            forced, __f = ctx.optimizer(
                allowed_platforms={platform, "driver"}).pick_best(plan)
            assert free.cost.geometric_mean <= \
                forced.cost.geometric_mean + 1e-9

    @given(steps)
    @settings(max_examples=15)
    def test_execution_matches_plain_python(self, pipeline):
        ctx = RheemContext()
        got = _build(ctx, pipeline, 1.0).collect()

        # Reference evaluation in plain Python.
        data = list(range(60))
        paired = False
        for verb, param in pipeline:
            if verb == "map" and not paired:
                data = [x * param for x in data]
            elif verb == "filter" and not paired:
                data = [x for x in data if x % param != 0]
            elif verb == "distinct":
                seen, out = set(), []
                for x in data:
                    if x not in seen:
                        seen.add(x)
                        out.append(x)
                data = out
            elif verb == "sort" and not paired:
                data = sorted(data)
            elif verb == "pair" and not paired:
                data = [(x % param, x) for x in data]
                paired = True
            elif verb == "reduceby" and paired:
                acc = {}
                for k, v in data:
                    acc[k] = acc[k] + v if k in acc else v
                data = list(acc.values())  # back to plain integers
                paired = False
        assert sorted(got, key=repr) == sorted(data, key=repr)
