"""Tests for the GraphChi analog (out-of-core sharded graph engine)."""

import pytest

from repro import RheemContext
from repro.algorithms import pagerank_edges
from repro.platforms.graphchi import GraphChiEngine, ShardedGraph


class TestSharding:
    def test_edges_partitioned_by_destination_interval(self):
        edges = [(i, (i * 3) % 12) for i in range(12)]
        graph = ShardedGraph(edges, num_shards=3)
        assert graph.num_shards == 3
        total = 0
        for shard in graph.shards:
            for __src, dst in shard.edges:
                assert shard.interval_start <= dst < shard.interval_end
            total += len(shard.edges)
        assert total == len(edges)

    def test_shard_edges_sorted_by_source(self):
        edges = [(5, 0), (1, 0), (3, 0), (2, 1)]
        graph = ShardedGraph(edges, num_shards=1)
        sources = [s for s, __ in graph.shards[0].edges]
        assert sources == sorted(sources)

    def test_out_degrees(self):
        graph = ShardedGraph([(0, 1), (0, 2), (1, 2)], num_shards=2)
        zero = graph.id_of[0]
        assert graph.out_degree[zero] == 2

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedGraph([], num_shards=0)


class TestEngine:
    def test_pagerank_matches_reference(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 2), (3, 0)]
        ours = GraphChiEngine(num_shards=3).pagerank(edges, iterations=15)
        reference = pagerank_edges(edges, iterations=15)
        for v in reference:
            assert ours[v] == pytest.approx(reference[v])

    def test_shard_count_does_not_change_result(self):
        edges = [(i, (i * 5) % 13) for i in range(13)]
        one = GraphChiEngine(num_shards=1).pagerank(edges)
        many = GraphChiEngine(num_shards=5).pagerank(edges)
        for v in one:
            assert one[v] == pytest.approx(many[v])

    def test_streams_one_shard_at_a_time(self):
        engine = GraphChiEngine(num_shards=4)
        engine.pagerank([(i, (i + 1) % 8) for i in range(8)], iterations=3)
        assert engine.shard_loads == 3 * 4  # iterations x shards

    def test_empty_graph(self):
        assert GraphChiEngine().pagerank([]) == {}


class TestPlatformIntegration:
    def _pagerank(self, ctx, sim_factor, pin=None):
        edges = [(i, (i * 7) % 40) for i in range(400)]
        dq = (ctx.load_collection(edges, sim_factor=sim_factor,
                                  bytes_per_record=16)
              .pagerank(iterations=10))
        if pin:
            dq.op.with_target_platform(pin)
        return dq

    def test_registered_and_runnable(self):
        ctx = RheemContext()
        assert any(p.name == "graphchi" for p in ctx.platforms)
        res = self._pagerank(ctx, 1000.0, pin="graphchi").execute()
        assert "graphchi" in res.platforms
        ranks = dict(res.output)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_survives_graphs_that_kill_jgraph(self):
        # ~50M simulated edges x 16 B x JGraph's object overhead >> its
        # 2 GB heap — but GraphChi is out-of-core.
        ctx = RheemContext()
        from repro.simulation.cluster import SimulatedOutOfMemory
        with pytest.raises(SimulatedOutOfMemory):
            self._pagerank(ctx, 125_000.0, pin="jgraph").execute()
        res = self._pagerank(RheemContext(), 125_000.0,
                             pin="graphchi").execute()
        assert "graphchi" in res.platforms

    def test_costs_reflect_per_iteration_streaming(self):
        few = self._pagerank(RheemContext(), 50_000.0, pin="graphchi")
        many = self._pagerank(RheemContext(), 50_000.0, pin="graphchi")
        many.op.inputs[0].op  # keep plan intact
        r_few = few.execute()
        # Rebuild with more iterations.
        ctx = RheemContext()
        edges = [(i, (i * 7) % 40) for i in range(400)]
        dq = (ctx.load_collection(edges, sim_factor=50_000.0,
                                  bytes_per_record=16)
              .pagerank(iterations=40))
        dq.op.with_target_platform("graphchi")
        r_many = dq.execute()
        assert r_many.runtime > 2 * r_few.runtime  # io grows with iterations

    def test_latin_alias(self):
        from repro.latin import resolve_platform
        assert resolve_platform("GraphChi") == "graphchi"
