"""Tests for the simulated-scale semantics: sim factors through operators,
join scaling modes, declared group counts, memory feasibility."""

import pytest

from repro import RheemContext
from repro.simulation.cluster import SimulatedOutOfMemory


def _result_channelish(res):
    return res


class TestJoinSimModes:
    def _run(self, ctx, sim_mode):
        left = ctx.load_collection([(i % 5, "l") for i in range(10)],
                                   sim_factor=100.0)
        right = ctx.load_collection([(i % 5, "r") for i in range(10)],
                                    sim_factor=100.0)
        return left.join(right, lambda t: t[0], lambda t: t[0],
                         sim_mode=sim_mode)

    def test_same_actual_results(self, ctx):
        linear = sorted(self._run(ctx, "linear").collect())
        product = sorted(self._run(RheemContext(), "product").collect())
        assert linear == product
        assert len(linear) == 20

    def test_product_mode_charges_more(self):
        # Quadratic output scaling must cost (much) more simulated time.
        ctx_a, ctx_b = RheemContext(), RheemContext()
        linear = self._run(ctx_a, "linear").execute(
            allowed_platforms={"pystreams", "driver"})
        product = self._run(ctx_b, "product").execute(
            allowed_platforms={"pystreams", "driver"})
        assert product.runtime > 10 * linear.runtime

    def test_invalid_mode_rejected(self, ctx):
        with pytest.raises(ValueError):
            self._run(ctx, "quadratic")


class TestSimGroups:
    def test_declared_group_count_bounds_downstream_cost(self):
        def run(sim_groups):
            ctx = RheemContext()
            data = ctx.load_collection([(i % 4, 1) for i in range(100)],
                                       sim_factor=1e6)
            agg = data.reduce_by_key(lambda t: t[0],
                                     lambda a, b: (a[0], a[1] + b[1]),
                                     sim_groups=sim_groups)
            # A post-aggregation map's cost depends on the group count.
            return agg.map(lambda t: t).execute(
                allowed_platforms={"pystreams", "driver"})

        undeclared = run(None)   # groups inherit the 1e6 factor
        declared = run(4.0)      # truly four groups
        assert sorted(undeclared.output) == sorted(declared.output)
        assert declared.runtime < undeclared.runtime

    def test_estimator_pins_declared_groups(self, ctx):
        from repro.core.operators import ReduceBy
        from repro.core.cardinality import CardinalityEstimate
        from repro.core.operators import EstimationContext
        op = ReduceBy(lambda t: t[0], lambda a, b: a, sim_groups=25)
        est = op.estimate_cardinality([CardinalityEstimate.exact(1e9)],
                                      EstimationContext())
        assert est.is_exact and est.upper == 25


class TestMemoryFeasibility:
    def _pagerank(self, ctx, sim_factor, pin=None):
        edges = [(i, (i * 7) % 50) for i in range(500)]
        dq = (ctx.load_collection(edges, sim_factor=sim_factor,
                                  bytes_per_record=16)
              .pagerank(iterations=5))
        if pin:
            dq.op.with_target_platform(pin)
        return dq

    def test_optimizer_avoids_infeasible_platform(self):
        # Huge graph: jgraph would OOM; the optimizer must route elsewhere.
        ctx = RheemContext()
        res = self._pagerank(ctx, sim_factor=1e6).execute()
        assert "jgraph" not in res.platforms

    def test_small_graph_may_use_jgraph(self):
        ctx = RheemContext()
        res = self._pagerank(ctx, sim_factor=100.0).execute()
        assert "jgraph" in res.platforms

    def test_explicit_pin_overrides_and_fails_at_runtime(self):
        ctx = RheemContext()
        with pytest.raises(SimulatedOutOfMemory):
            self._pagerank(ctx, sim_factor=1e6, pin="jgraph").execute()


class TestDiskBackedChannels:
    def test_pgres_relations_do_not_count_against_memory(self):
        # A relation bigger than pgres' RAM is fine (disk-backed)...
        ctx = RheemContext()
        rows = [{"k": i} for i in range(100)]
        ctx.pgres.create_table("big", ["k"], rows, sim_factor=5e6,
                               bytes_per_row=100.0)  # 50 TB simulated
        out = (ctx.read_table("big")
               .filter_range("k", 0, 10, selectivity=0.11)
               .execute(allowed_platforms={"pgres", "driver"}))
        assert len(out.output) == 11

    def test_collections_do_count(self):
        # ...but materializing it as a driver collection is fatal.
        ctx = RheemContext()
        ctx.vfs.write("hdfs://big", ["x"] * 100, sim_factor=5e6,
                      bytes_per_record=100.0)
        with pytest.raises(SimulatedOutOfMemory):
            ctx.read_text_file("hdfs://big").collect(
                allowed_platforms={"pystreams", "driver"})


class TestCriticalPathWithLoops:
    def test_loop_iterations_wait_for_preparation(self, ctx):
        # The first loop iteration must start AFTER the (slow) preparation
        # of its invariant input, so total > preparation time.
        ctx.vfs.write("hdfs://pts", ["1"] * 100, sim_factor=2e6,
                      bytes_per_record=700.0)  # slow to read + parse
        data = (ctx.read_text_file("hdfs://pts")
                .map(float, name="parse").cache())
        seed = ctx.load_collection([0.0])
        out = seed.repeat(
            3, lambda s, inv: inv.sample(size=2, method="random_jump",
                                         broadcasts=[s])
            .reduce(lambda a, b: a + b),
            invariants=[data])
        res = out.execute(allowed_platforms={"flinklite", "pystreams",
                                             "driver"})
        # The preparation stage is the long non-iteration one (file read).
        prep = max((t for t in res.tracker.timings()
                    if ".it" not in t.stage_id), key=lambda t: t.duration)
        assert prep.duration > 1.0
        first_iter = min(t.start for t in res.tracker.timings()
                         if ".it0." in t.stage_id)
        assert first_iter >= prep.end - 1e-9
