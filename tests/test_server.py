"""Tests for the concurrent job server: admission control, job lifecycle,
deadlines/cancellation, drain, the WSGI front end — and the regression
test that a failed job never leaks its tracer onto the shared context."""

import io
import json
import threading
import time

import pytest

from repro import RheemContext
from repro.api import RheemService
from repro.core.executor import JobCancelled
from repro.server import AdmissionError, JobServer, JobState, make_wsgi_app
from repro.trace import NO_TRACER

WORDCOUNT_DOC = {
    "operators": [
        {"name": "lines", "kind": "textfile_source",
         "path": "hdfs://srv/x.txt"},
        {"name": "words", "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs", "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
    ],
    "sink": {"name": "counts"},
}

BAD_DOC = {"operators": [], "sink": {"name": "ghost"}}


def _ctx(**config):
    ctx = RheemContext(config=config or None)
    ctx.vfs.write("hdfs://srv/x.txt", ["a b", "b"], sim_factor=10.0)
    return ctx


def _wait_until_running(job, timeout=10.0):
    """Spin until the server's worker has actually picked the job up.

    Dispatch commits at pick time (a worker taking the job off the
    pending queue), so "the running job" in a test must be observed in
    the RUNNING state before shutdown semantics around it are asserted.
    """
    deadline = time.monotonic() + timeout
    while job.state is JobState.QUEUED:
        if time.monotonic() > deadline:
            raise AssertionError(f"{job.job_id} never started running")
        time.sleep(0.001)


def _gated_doc():
    """A document whose map UDF blocks until ``gate`` is set (via env)."""
    gate = threading.Event()
    doc = {
        "operators": [
            {"name": "src", "kind": "collection_source", "data": [1, 2, 3]},
            {"name": "hold", "kind": "map", "input": "src",
             "expr": "(gate.wait(10), x)[1]"},
        ],
        "sink": {"name": "hold"},
    }
    return doc, gate


class TestAdmissionControl:
    def test_queue_full_rejection_is_structured(self):
        doc, gate = _gated_doc()
        server = JobServer(RheemContext(), env={"gate": gate},
                          workers=1, queue_size=1)
        try:
            running = server.submit(doc)      # occupies the worker
            queued = server.submit(doc)       # occupies the queue slot
            rejected = server.submit(doc)     # over capacity
            assert rejected.state is JobState.REJECTED
            assert rejected.response["status"] == "rejected"
            assert rejected.response["code"] == 429
            assert rejected.response["kind"] == "QueueFull"
            assert "queue full" in rejected.response["error"]
            # A rejected job never occupies a slot: it is not in the table.
            assert server.status(rejected.job_id) is None
        finally:
            gate.set()
            server.shutdown(drain=True)
        assert running.state is JobState.DONE
        assert queued.state is JobState.DONE
        counters = server.metrics.snapshot()["counters"]
        assert counters["server.jobs.rejected"] == 1
        assert counters["server.jobs.done"] == 2

    def test_submit_sync_raises_admission_error(self):
        doc, gate = _gated_doc()
        server = JobServer(RheemContext(), env={"gate": gate},
                          workers=1, queue_size=0)
        try:
            server.submit(doc)
            with pytest.raises(AdmissionError) as err:
                server.submit_sync(doc)
            assert err.value.response["code"] == 429
        finally:
            gate.set()
            server.shutdown(drain=True)

    def test_rejected_after_shutdown(self):
        server = JobServer(_ctx(), workers=1)
        server.shutdown(drain=True)
        job = server.submit(WORDCOUNT_DOC)
        assert job.state is JobState.REJECTED
        assert job.response["code"] == 503
        assert job.response["kind"] == "ServerStopping"


class TestJobLifecycle:
    def test_done_job_status_and_result(self):
        with JobServer(_ctx(), workers=2) as server:
            job = server.submit(WORDCOUNT_DOC)
            response = server.result(job.job_id, timeout=30)
        assert response["status"] == "ok"
        assert sorted(map(tuple, response["output"])) == [("a", 1), ("b", 2)]
        status = server.status(job.job_id)
        assert status["state"] == "done"
        assert status["wait_s"] >= 0 and status["run_s"] > 0
        assert status["response"]["status"] == "ok"
        hist = server.metrics.snapshot()["histograms"]
        assert hist["server.wait_s"]["count"] == 1
        assert hist["server.run_s"]["count"] == 1

    def test_failed_job_state(self):
        with JobServer(_ctx(), workers=1) as server:
            response = server.submit_sync(BAD_DOC)
        assert response["status"] == "error"
        assert server.metrics.snapshot()["counters"]["server.jobs.failed"] == 1

    def test_unknown_job_id(self):
        server = JobServer(_ctx(), workers=1)
        assert server.status("job-999") is None
        with pytest.raises(KeyError):
            server.result("job-999")
        server.shutdown()

    def test_drain_runs_queued_jobs(self):
        server = JobServer(_ctx(), workers=1, queue_size=8)
        jobs = [server.submit(WORDCOUNT_DOC) for __ in range(5)]
        server.shutdown(drain=True)
        assert all(j.state is JobState.DONE for j in jobs)

    def test_non_drain_shutdown_fails_queued_jobs(self):
        doc, gate = _gated_doc()
        server = JobServer(RheemContext(), env={"gate": gate},
                          workers=1, queue_size=4)
        running = server.submit(doc)
        queued = [server.submit(doc) for __ in range(3)]
        _wait_until_running(running)
        server.shutdown(drain=False)
        gate.set()
        responses = [server.result(j.job_id, timeout=30) for j in queued]
        assert all(r["kind"] == "ServerShutdown" for r in responses)
        assert all(j.state is JobState.FAILED for j in queued)
        # The running job was never interrupted mid-stage.
        assert server.result(running.job_id, timeout=30)["status"] == "ok"


class TestTracerIsolation:
    """Regression: a job must never leak its tracer onto the shared
    context — not even when the document fails to parse (the old
    implementation swapped ``ctx.tracer`` and restored it in a
    ``finally``; the refactor passes the tracer through execution and
    never mutates the context at all)."""

    def test_failed_parse_leaves_context_tracer(self):
        ctx = RheemContext()
        service = RheemService(ctx)
        assert ctx.tracer is NO_TRACER
        response = service.submit(BAD_DOC)
        assert response["status"] == "error"
        assert ctx.tracer is NO_TRACER

    def test_failed_execution_leaves_recording_tracer(self):
        ctx = _ctx()
        installed = ctx.enable_tracing()
        service = RheemService(ctx)
        doc = json.loads(json.dumps(WORDCOUNT_DOC))
        doc["operators"][1]["expr"] = "x.no_such_method()"
        with pytest.raises(AttributeError):
            service.submit(doc)
        assert ctx.tracer is installed
        # ... and the failed job's spans did not land on the shared tracer.
        assert installed.roots == []

    def test_ok_submission_never_touches_context_tracer(self):
        ctx = _ctx()
        service = RheemService(ctx)
        response = service.submit(WORDCOUNT_DOC)
        assert response["status"] == "ok"
        assert ctx.tracer is NO_TRACER
        assert response["trace"]["spans"]  # the per-job tracer recorded


class TestDeadlinesAndCancellation:
    def test_cancel_check_raises_at_stage_boundary(self):
        ctx = _ctx()
        calls = []

        def cancel():
            calls.append(1)
            raise JobCancelled("now")

        plan = (ctx.read_text_file("hdfs://srv/x.txt")
                .flat_map(str.split).to_plan())
        with pytest.raises(JobCancelled):
            ctx.execute(plan, cancel_check=cancel)
        assert calls  # the hook actually ran

    def test_timeout_releases_slot_and_keeps_state_consistent(self):
        # Every stage dwells 50 ms of wall time; a 1 ms deadline must fire
        # at the next stage boundary.
        ctx = _ctx(stage_wall_s=0.05)
        with JobServer(ctx, workers=1, queue_size=4) as server:
            before = dict(ctx.plan_cache.stats)
            job = server.submit(WORDCOUNT_DOC, deadline_s=0.001)
            response = server.result(job.job_id, timeout=30)
            assert job.state is JobState.TIMEOUT
            assert response["status"] == "error"
            assert response["kind"] == "Timeout"
            assert server.status(job.job_id)["state"] == "timeout"
            # The cancelled attempt charged exactly one plan-cache lookup
            # (its own miss) — no phantom increments from the abandoned
            # execution.
            after = dict(ctx.plan_cache.stats)
            assert after["misses"] == before["misses"] + 1
            assert after["hits"] == before["hits"]
            # The queue slot is free: the same document runs to completion
            # and replays the cached plan.
            ok = server.submit_sync(WORDCOUNT_DOC, deadline_s=60)
            assert ok["status"] == "ok"
            assert ctx.plan_cache.stats["hits"] == before["hits"] + 1
            assert ctx.plan_cache.stats["misses"] == before["misses"] + 1
        counters = server.metrics.snapshot()["counters"]
        assert counters["server.jobs.timeout"] == 1
        assert counters["server.jobs.done"] == 1
        assert server.snapshot()["in_flight"] == 0

    def test_deadline_already_past_when_dequeued(self):
        doc, gate = _gated_doc()
        server = JobServer(RheemContext(), env={"gate": gate},
                          workers=1, queue_size=2)
        try:
            server.submit(doc)  # hold the only worker
            late = server.submit(doc, deadline_s=0.0)
        finally:
            gate.set()
        response = server.result(late.job_id, timeout=30)
        server.shutdown(drain=True)
        assert late.state is JobState.TIMEOUT
        assert response["kind"] == "Timeout"


class TestWsgiFrontend:
    def _call(self, app, method="POST", path="/jobs", body=b"", qs=""):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        environ = {"REQUEST_METHOD": method, "PATH_INFO": path,
                   "QUERY_STRING": qs, "CONTENT_LENGTH": str(len(body)),
                   "wsgi.input": io.BytesIO(body)}
        chunks = app(environ, start_response)
        return captured["status"], json.loads(b"".join(chunks))

    def test_sync_roundtrip_and_status_codes(self):
        with JobServer(_ctx(), workers=2) as server:
            app = make_wsgi_app(server)
            body = json.dumps(WORDCOUNT_DOC).encode()
            status, payload = self._call(app, body=body)
            assert status == "200 OK" and payload["status"] == "ok"
            status, payload = self._call(app, body=b"{broken")
            assert status.startswith("400")
            status, __ = self._call(app, method="GET", path="/jobs/nope")
            assert status.startswith("404")
            status, payload = self._call(app, method="GET", path="/metrics")
            assert status == "200 OK" and "counters" in payload

    def test_async_submit_then_poll(self):
        with JobServer(_ctx(), workers=2) as server:
            app = make_wsgi_app(server)
            body = json.dumps(WORDCOUNT_DOC).encode()
            status, payload = self._call(app, body=body, qs="mode=async")
            assert status == "202 Accepted"
            job_id = payload["job_id"]
            server.result(job_id, timeout=30)
            status, payload = self._call(app, method="GET",
                                         path=f"/jobs/{job_id}")
            assert status == "200 OK"
            assert payload["state"] == "done"
            assert payload["response"]["status"] == "ok"

    def test_queue_full_maps_to_429(self):
        doc, gate = _gated_doc()
        server = JobServer(RheemContext(), env={"gate": gate},
                          workers=1, queue_size=0)
        app = make_wsgi_app(server)
        try:
            server.submit(doc)
            status, payload = self._call(
                app, body=json.dumps(doc).encode())
            assert status.startswith("429")
            assert payload["kind"] == "QueueFull"
        finally:
            gate.set()
            server.shutdown(drain=True)

    def test_shutdown_maps_to_503_and_timeout_to_408(self):
        ctx = _ctx(stage_wall_s=0.05)
        server = JobServer(ctx, workers=1)
        app = make_wsgi_app(server)
        body = json.dumps(WORDCOUNT_DOC).encode()
        status, payload = self._call(app, body=body, qs="deadline_s=0.001")
        assert status.startswith("408")
        assert payload["kind"] == "Timeout"
        server.shutdown(drain=True)
        status, payload = self._call(app, body=body)
        assert status.startswith("503")
