"""The cross-job intermediate-result store (result reuse).

The store keeps committed stage outputs keyed by ``(subplan
fingerprint, source-cardinality bands, cost-model version)`` and offers
them to the optimizer as zero-cost sources, so a resubmission skips both
plan enumeration and the execution itself.  These tests pin down the
contract: reuse is invisible in the *results* (bit-for-bit, vectorized
mode included), bypassed whenever execution is observed or perturbed
(sniffers, fault injection), invalidated by cost-model publication, and
bounded by a benefit-ranked byte budget.
"""

import argparse

import pytest
from conftest import wordcount

from repro import RheemContext
from repro.core.channels import Channel
from repro.core.cost import OperatorCostParams
from repro.core.executor import Sniffer
from repro.core.faults import FaultInjector
from repro.core.resultstore import IntermediateResultStore


def _corpus(ctx, path="hdfs://reuse/corpus.txt"):
    ctx.vfs.write(path, ["to be or not to be"] * 40, sim_factor=1_000.0)
    return path


def _run(ctx, **kwargs):
    return ctx.execute(wordcount(ctx, _corpus(ctx)).to_plan(), **kwargs)


class TestWarmResubmission:
    def test_second_run_hits_the_store_and_skips_execution(self, ctx):
        first = _run(ctx)
        assert ctx.result_store.stats["admissions"] >= 1
        assert ctx.result_store.stats["hits"] == 0
        second = _run(ctx)
        assert ctx.result_store.stats["hits"] >= 1
        assert second.output == first.output
        # The reused run executes only the sink over the stored channel:
        # virtually none of the original simulated work remains.
        assert second.runtime < first.runtime / 10

    def test_reuse_skips_the_plan_cache_too(self, ctx):
        _run(ctx)
        lookups = ctx.plan_cache.stats["hits"] + ctx.plan_cache.stats["misses"]
        _run(ctx)
        after = ctx.plan_cache.stats["hits"] + ctx.plan_cache.stats["misses"]
        assert after == lookups  # the warm run never consulted it

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_results_are_bit_for_bit_with_reuse_on_and_off(self, vectorize):
        outputs = []
        for result_reuse in (True, False):
            ctx = RheemContext(config={"result_reuse": result_reuse,
                                       "vectorize": vectorize})
            cold = _run(ctx)
            warm = _run(ctx)
            assert warm.output == cold.output
            if result_reuse:
                assert ctx.result_store.stats["hits"] >= 1
            else:
                assert ctx.result_store.stats["hits"] == 0
                assert len(ctx.result_store) == 0
            outputs.append(warm.output)
        assert outputs[0] == outputs[1]


class TestInvalidationAndBypass:
    def test_publishing_cost_params_flushes_the_store(self, ctx):
        _run(ctx)
        assert len(ctx.result_store) >= 1
        ctx.publish_cost_params(
            {"pystreams.map": OperatorCostParams(2.0, 0.0, 0.1)})
        assert len(ctx.result_store) == 0
        assert ctx.result_store.stats["flushes"] == 1
        # The next run re-executes under the new parameters (no hit) and
        # republishes under the bumped cost-model version.
        _run(ctx)
        assert ctx.result_store.stats["hits"] == 0
        assert len(ctx.result_store) >= 1

    def test_sniffed_runs_bypass_the_store(self, ctx):
        dq = wordcount(ctx, _corpus(ctx))
        flatmap_op = dq.op.inputs[0].op.inputs[0].op
        tapped = []
        dq.execute(sniffers=[Sniffer(flatmap_op.id, tapped.append)])
        assert tapped
        # Sniffers observe (and may perturb) live channels: nothing was
        # published and nothing was probed.
        assert len(ctx.result_store) == 0
        stats = ctx.result_store.stats
        assert stats["hits"] == stats["misses"] == stats["admissions"] == 0
        # ... and a sniffed run after a clean one must not serve the
        # stored result either (the sniffer needs real execution).
        clean = _run(ctx)
        assert len(ctx.result_store) >= 1
        tapped.clear()
        sniffed = ctx.execute(
            wordcount(ctx, _corpus(ctx)).to_plan(),
            sniffers=[Sniffer(flatmap_op.id, tapped.append)])
        assert ctx.result_store.stats["hits"] == 0
        assert sniffed.output == clean.output

    def test_fault_injected_runs_bypass_the_store(self, ctx):
        plan = wordcount(ctx, _corpus(ctx)).to_plan()
        exec_plan, __ = ctx.optimize(plan)
        stage = exec_plan.build_stages(break_after=set())[0].id
        injector = FaultInjector(failures={stage: 1})
        result = ctx.execute(wordcount(ctx, _corpus(ctx)).to_plan(),
                             fault_injector=injector, max_stage_retries=2)
        assert injector.injected == 1
        assert len(ctx.result_store) == 0
        assert ctx.result_store.stats["hits"] == 0
        reference = _run(ctx)
        assert result.output == reference.output


class TestAdmissionAndEviction:
    def _channel(self, ctx, payload, mb, count=10):
        descriptor = next(iter(ctx.graph.descriptors()))
        bytes_per_record = mb * 1e6 / count
        return Channel(descriptor, payload, 1.0, bytes_per_record, count)

    def test_eviction_under_a_tight_byte_budget(self, ctx):
        store = IntermediateResultStore(budget_mb=2.5, min_benefit=0.0,
                                        metrics=ctx.metrics)
        store.offer(("a",), self._channel(ctx, [1], mb=1.0), recompute_s=1.0)
        store.offer(("b",), self._channel(ctx, [2], mb=1.0), recompute_s=9.0)
        assert len(store) == 2 and store.bytes_mb == pytest.approx(2.0)
        # Admitting a third entry overflows the budget; the lowest-benefit
        # resident ("a": 1 s/MB) is evicted, not the newcomer.
        store.offer(("c",), self._channel(ctx, [3], mb=1.0), recompute_s=5.0)
        assert store.stats["evictions"] == 1
        assert store.get(("a",)) is None
        assert store.get(("b",)) is not None
        assert store.get(("c",)) is not None
        assert store.bytes_mb <= store.budget_mb

    def test_oversized_and_cheap_outputs_are_rejected(self, ctx):
        store = IntermediateResultStore(budget_mb=1.0, min_benefit=0.5)
        # Cheaper to recompute than to hold.
        assert not store.offer(("cheap",), self._channel(ctx, [1], mb=1.0),
                               recompute_s=0.01)
        # Larger than the whole budget: rejected, not admitted-then-evicted.
        assert not store.offer(("huge",), self._channel(ctx, [2], mb=4.0),
                               recompute_s=100.0)
        assert store.stats["rejections"] == 2 and len(store) == 0

    def test_end_to_end_budget_is_configurable(self):
        ctx = RheemContext(config={"reuse_budget_mb": 1e-6})
        _run(ctx)
        # Everything worth storing overflows a near-zero budget.
        assert ctx.result_store.stats["admissions"] == 0
        assert len(ctx.result_store) == 0
        _run(ctx)
        assert ctx.result_store.stats["hits"] == 0


class TestTogglesAndExposure:
    def test_config_flag_disables_reuse(self):
        ctx = RheemContext(config={"result_reuse": False})
        assert not ctx.result_store.enabled
        first = _run(ctx)
        second = _run(ctx)
        assert second.output == first.output
        assert len(ctx.result_store) == 0
        # With the store out of the way the plan cache serves the rerun.
        assert ctx.plan_cache.stats["hits"] == 1

    def test_cli_flag_disables_reuse(self):
        from repro.__main__ import _build_context

        args = argparse.Namespace(no_cache=False, no_reuse=True,
                                  abstracts=0.0, pagelinks=0.0)
        ctx = _build_context(args)
        assert not ctx.result_store.enabled
        assert ctx.plan_cache.enabled  # --no-reuse leaves caching alone

    def test_metrics_endpoint_exposes_intermediate_counters(self):
        import json

        from repro.server import JobServer, make_wsgi_app

        ctx = RheemContext()
        ctx.vfs.write("hdfs://doc/lines.txt", ["a b a"] * 10,
                      sim_factor=100.0)
        document = {
            "operators": [
                {"name": "lines", "kind": "textfile_source",
                 "path": "hdfs://doc/lines.txt"},
                {"name": "words", "kind": "flatmap", "input": "lines",
                 "expr": "x.split()"},
            ],
            "sink": {"name": "words"},
        }
        with JobServer(ctx, workers=1) as server:
            app = make_wsgi_app(server)
            body = json.dumps(document).encode()
            for __ in range(2):
                captured = {}

                def start_response(status, headers):
                    captured["status"] = status

                list(app({"REQUEST_METHOD": "POST", "PATH_INFO": "/jobs",
                          "CONTENT_LENGTH": str(len(body)),
                          "wsgi.input": _Body(body)}, start_response))
                assert captured["status"] == "200 OK"
            chunks = app({"REQUEST_METHOD": "GET", "PATH_INFO": "/metrics",
                          "QUERY_STRING": ""}, lambda *a: None)
            snapshot = json.loads(b"".join(chunks))
        assert snapshot["counters"]["intermediate.hits"] >= 1
        assert snapshot["counters"]["intermediate.admissions"] >= 1
        assert "intermediate.bytes" in snapshot["gauges"]

    def test_unstable_plans_count_and_lint(self, ctx):
        quanta = ctx.load_collection([1, 2]).map(str)
        quanta.op.mystery = object()  # only identified by its address
        quanta.execute()
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["fingerprint.unstable"] >= 1
        # RP014 names the operator and the offending attribute.
        from repro.analysis.engine import PlanAnalyzer

        quanta2 = ctx.load_collection([1, 2]).map(str)
        quanta2.op.mystery = object()
        report = PlanAnalyzer().analyze(quanta2.to_plan())
        found = [d for d in report.diagnostics if d.rule_id == "RP014"]
        assert found and "'mystery'" in found[0].message


class _Body:
    def __init__(self, data: bytes) -> None:
        self._data = data

    def read(self, n: int) -> bytes:
        out, self._data = self._data[:n], b""
        return out
