"""The concurrency correctness pass: registry, ordered locks, checker.

Covers the three legs of the lock-order tooling plus the plan-level race
lint:

* the registry itself (`repro.concurrency.order`) validates and resolves;
* `OrderedLock`/`OrderedRLock` assert rank order per thread under the
  debug flag and feed wait/hold histograms into a metrics registry;
* the static checker (`repro.analysis.locks`) flags the seeded fixture
  (`tests/fixtures/lock_inversion.py`) on every rule and passes the real
  tree clean — the same guarantee `python -m repro lint --concurrency`
  enforces in CI;
* RP201 flags UDFs sharing one captured mutable object across stages the
  scheduler may overlap, and stays quiet on serial chains.
"""

import json
import threading
from pathlib import Path

import pytest

from repro import RheemContext
from repro.analysis import analyze_plan
from repro.analysis.locks import check_package, check_source
from repro.concurrency import (
    LOCK_ORDER,
    LockOrderViolation,
    OrderedLock,
    OrderedRLock,
    UnknownLockError,
    debug_enabled,
    held_locks,
    lock_rank,
    lock_spec,
    render_order,
    validate_order,
)
from repro.concurrency.order import LockSpec
from repro.server import JobServer, make_wsgi_app
from repro.trace import MetricsRegistry

FIXTURE = Path(__file__).parent / "fixtures" / "lock_inversion.py"


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_declared_order_is_valid(self):
        validate_order()  # raises on any inconsistency

    def test_ranks_strictly_increase(self):
        ranks = [spec.rank for spec in LOCK_ORDER]
        assert ranks == sorted(ranks) and len(set(ranks)) == len(ranks)

    def test_lookup_and_unknown(self):
        assert lock_spec("metrics").rank == lock_rank("metrics")
        with pytest.raises(UnknownLockError):
            lock_spec("no-such-lock")

    def test_render_mentions_every_lock(self):
        table = render_order()
        for spec in LOCK_ORDER:
            assert spec.name in table

    def test_validate_rejects_bad_registries(self):
        dup = (LockSpec("a", 1, "lock", ()), LockSpec("a", 2, "lock", ()))
        with pytest.raises(ValueError):
            validate_order(dup)
        unsorted_ = (LockSpec("a", 2, "lock", ()),
                     LockSpec("b", 1, "lock", ()))
        with pytest.raises(ValueError):
            validate_order(unsorted_)


# ------------------------------------------------------------ ordered locks
class TestOrderedLockRuntime:
    def test_debug_flag_is_on_in_tests(self):
        assert debug_enabled()

    def test_kind_mismatch_rejected(self):
        with pytest.raises(TypeError):
            OrderedLock("plan_cache")  # declared rlock
        with pytest.raises(TypeError):
            OrderedRLock("metrics")  # declared lock
        with pytest.raises(UnknownLockError):
            OrderedLock("not-in-registry")

    def test_correct_order_passes_and_tracks(self):
        outer = OrderedLock("server.jobs")
        inner = OrderedLock("metrics")
        with outer:
            assert held_locks() == ["server.jobs"]
            with inner:
                assert held_locks() == ["server.jobs", "metrics"]
        assert held_locks() == []

    def test_inversion_raises_and_leaves_lock_free(self):
        outer = OrderedLock("server.jobs")
        inner = OrderedLock("metrics")
        with inner:
            with pytest.raises(LockOrderViolation):
                outer.acquire()
        # The failed acquire never touched the underlying lock.
        assert not outer.locked()
        with outer:
            pass  # still usable

    def test_equal_rank_raises_for_plain_lock(self):
        a = OrderedLock("executor.job")
        b = OrderedLock("executor.job")
        with a:
            with pytest.raises(LockOrderViolation):
                b.acquire()

    def test_rlock_reentry_is_exempt(self):
        lock = OrderedRLock("plan_cache")
        with lock:
            with lock:  # same object: legal, like threading.RLock
                assert held_locks().count("plan_cache") == 2

    def test_histograms_record_wait_and_hold(self):
        metrics = MetricsRegistry()
        lock = OrderedLock("scheduler.dispatch", metrics)
        with lock:
            pass
        snap = metrics.snapshot()["histograms"]
        assert snap["lock.wait_s.scheduler.dispatch"]["count"] == 1
        assert snap["lock.hold_s.scheduler.dispatch"]["count"] == 1

    def test_violation_escapes_lane_threads(self):
        # A rank inversion on a worker thread must surface, not deadlock.
        inner = OrderedLock("metrics")
        outer = OrderedLock("server.jobs")
        caught = []

        def lane():
            with inner:
                try:
                    outer.acquire()
                except LockOrderViolation as exc:
                    caught.append(exc)

        thread = threading.Thread(target=lane)
        thread.start()
        thread.join(5)
        assert caught


# ----------------------------------------------------------- static checker
class TestStaticChecker:
    def test_tree_passes_clean(self):
        assert check_package() == []

    def test_fixture_is_fully_flagged(self):
        # Checked under the server module name so the registry's owner
        # and guard declarations apply to the shadowed JobServer class.
        findings = check_source(FIXTURE.read_text(),
                                module="repro.server.server",
                                path=str(FIXTURE))
        rules = {f.rule_id for f in findings}
        assert rules == {"RC001", "RC002", "RC003", "RC004"}

    def test_call_edge_inversion_is_found(self):
        src = (
            "from repro.concurrency import OrderedLock\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self.low = OrderedLock('server.jobs')\n"
            "        self.high = OrderedLock('metrics')\n"
            "    def helper(self):\n"
            "        with self.low:\n"
            "            pass\n"
            "    def entry(self):\n"
            "        with self.high:\n"
            "            self.helper()\n")
        findings = check_source(src)
        assert any(f.rule_id == "RC002" for f in findings)

    def test_waiver_comment_suppresses(self):
        src = (
            "from repro.concurrency import OrderedLock\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self.lock = OrderedLock('server.jobs')\n"
            "    def run(self, fut):\n"
            "        with self.lock:\n"
            "            # lock-ok: test waiver\n"
            "            fut.result()\n")
        assert check_source(src) == []

    def test_exec_hot_path_state_write_is_flagged(self):
        # RC005: cached plans share operator instances across loop
        # iterations and concurrent jobs; per-run values must be threaded
        # through the call, never stored on self.
        src = (
            "class MyOp(ExecutionOperator):\n"
            "    def _run(self, inputs, bvals, ctx):\n"
            "        self.invocations = self.invocations + 1\n"
            "        return inputs[0]\n")
        findings = check_source(src)
        assert any(f.rule_id == "RC005" for f in findings)

    def test_exec_hot_path_mutator_call_is_flagged(self):
        src = (
            "class Base(ExecutionOperator):\n"
            "    pass\n"
            "class Leaf(Base):\n"
            "    def execute(self, inputs, broadcasts, ctx):\n"
            "        self.seen.append(inputs)\n"
            "        return inputs[0]\n")
        findings = check_source(src)
        assert any(f.rule_id == "RC005" and "Leaf" in f.message
                   for f in findings)

    def test_non_operator_hot_path_writes_pass(self):
        src = (
            "class Visitor:\n"
            "    def _run(self, inputs, bvals, ctx):\n"
            "        self.count = 1\n"
            "        return inputs[0]\n")
        assert not any(f.rule_id == "RC005" for f in check_source(src))

    def test_operator_writes_outside_hot_paths_pass(self):
        src = (
            "class MyOp(ExecutionOperator):\n"
            "    def __init__(self, logical):\n"
            "        self.logical = logical\n"
            "    def helper(self):\n"
            "        self.cache = {}\n")
        assert not any(f.rule_id == "RC005" for f in check_source(src))

    def test_rc005_waiver_comment_suppresses(self):
        src = (
            "class MyOp(ExecutionOperator):\n"
            "    def _run(self, inputs, bvals, ctx):\n"
            "        # lock-ok: test waiver\n"
            "        self.invocations = 1\n"
            "        return inputs[0]\n")
        assert not any(f.rule_id == "RC005" for f in check_source(src))

    def test_runtime_catches_the_same_fixture(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "lock_inversion_fixture", FIXTURE)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        with pytest.raises(LockOrderViolation):
            module.Inverted().inverted_acquire()


# -------------------------------------------------- instrumented job server
class TestServerContention:
    def test_lock_histograms_reach_metrics_endpoint(self):
        ctx = RheemContext()
        ctx.vfs.write("hdfs://srv/c.txt", ["a b", "b"], sim_factor=10.0)
        doc = {
            "operators": [
                {"name": "lines", "kind": "textfile_source",
                 "path": "hdfs://srv/c.txt"},
                {"name": "words", "kind": "flatmap", "input": "lines",
                 "expr": "x.split()"},
            ],
            "sink": {"name": "words"},
        }
        with JobServer(ctx, workers=2) as server:
            response = server.submit_sync(doc)
            assert response["status"] == "ok"
            app = make_wsgi_app(server)
            captured = {}

            def start_response(status, headers):
                captured["status"] = status

            chunks = app({"REQUEST_METHOD": "GET", "PATH_INFO": "/metrics",
                          "QUERY_STRING": ""}, start_response)
            payload = json.loads(b"".join(chunks))
        assert captured["status"] == "200 OK"
        hists = payload["histograms"]
        assert hists["lock.wait_s.server.jobs"]["count"] > 0
        assert hists["lock.hold_s.server.jobs"]["count"] > 0
        assert hists["lock.hold_s.server.jobs"]["max"] >= 0.0


# ------------------------------------------------------------ RP201 lint
class TestSharedCaptureAcrossLanes:
    def _parallel_plan(self):
        ctx = RheemContext()
        shared = []
        src = ctx.load_collection([1, 2, 3])
        a = src.map(lambda x: (shared.append(x), x)[1])
        b = src.map(lambda x: (shared.count(x), x)[1])
        return ctx, a.union(b).to_plan()

    def test_fires_on_potentially_concurrent_stages(self):
        ctx, plan = self._parallel_plan()
        report = analyze_plan(plan, ctx)
        hits = [d for d in report if d.rule_id == "RP201"]
        assert len(hits) == 1
        assert "different lanes" in hits[0].message

    def test_quiet_on_serial_chains(self):
        ctx = RheemContext()
        state = []
        quanta = (ctx.load_collection([1, 2, 3])
                  .map(lambda x: (state.append(x), x)[1])
                  .map(lambda x: (state.count(x), x)[1]))
        report = analyze_plan(quanta.to_plan(), ctx)
        # RP010 still flags each capture; RP201 must not cry wolf on a
        # chain the scheduler can never overlap.
        assert any(d.rule_id == "RP010" for d in report)
        assert not any(d.rule_id == "RP201" for d in report)

    def test_quiet_on_distinct_objects(self):
        ctx = RheemContext()
        left, right = [], []
        src = ctx.load_collection([1, 2, 3])
        a = src.map(lambda x: (left.append(x), x)[1])
        b = src.map(lambda x: (right.append(x), x)[1])
        report = analyze_plan(a.union(b).to_plan(), ctx)
        assert not any(d.rule_id == "RP201" for d in report)
