"""Tests for mappings, inflation, the cost model and the enumerator."""

import pytest

from repro.core import operators as ops
from repro.core.cardinality import CardinalityEstimate
from repro.core.cost import (
    CostEstimate,
    CostModel,
    OperatorCostParams,
    kind_params,
)
from repro.core.mappings import NoMappingError
from repro.core.optimizer import LoopDecision, OptimizationError
from repro.core.plan import RheemPlan
from repro.simulation import VirtualCluster


class TestCostModel:
    def test_operator_cost_math(self):
        model = CostModel(VirtualCluster())
        cost = model.operator_cost(
            "pystreams", "map", CardinalityEstimate.exact(1_000_000),
            CardinalityEstimate.exact(1_000_000))
        # alpha=1, tuple cost 1e-6, parallelism 1 -> 1 second.
        assert cost.geometric_mean == pytest.approx(1.0)

    def test_parallelism_divides(self):
        model = CostModel(VirtualCluster())
        single = model.operator_cost("pystreams", "map",
                                     CardinalityEstimate.exact(1e6),
                                     CardinalityEstimate.exact(1e6))
        wide = model.operator_cost("sparklite", "map",
                                   CardinalityEstimate.exact(1e6),
                                   CardinalityEstimate.exact(1e6))
        assert wide.geometric_mean < single.geometric_mean

    def test_learned_params_override_defaults(self):
        model = CostModel(VirtualCluster(),
                          {"pystreams.map": OperatorCostParams(0, 0, 9.0)})
        cost = model.operator_cost("pystreams", "map",
                                   CardinalityEstimate.exact(100),
                                   CardinalityEstimate.exact(100))
        assert cost.geometric_mean == pytest.approx(9.0)

    def test_kind_defaults(self):
        assert kind_params("join").beta == 1.0
        assert kind_params("sample").alpha == 0.0
        assert kind_params("totally-unknown").alpha == 1.0

    def test_cost_estimate_algebra(self):
        a = CostEstimate(1, 2, 0.5)
        b = CostEstimate.fixed(3)
        assert a.plus(b).lower == 4 and a.plus(b).confidence == 0.5
        assert a.times(10).upper == 20
        with pytest.raises(ValueError):
            CostEstimate(2, 1)


class TestMappingsAndInflation:
    def test_every_builtin_op_has_alternatives(self, ctx):
        candidates = [
            ops.Map(lambda x: x), ops.Filter(lambda x: True),
            ops.FlatMap(lambda x: [x]), ops.Distinct(), ops.Sort(),
            ops.ReduceBy(lambda x: x, lambda a, b: a),
            ops.GlobalReduce(lambda a, b: a), ops.Count(), ops.Cache(),
            ops.Union(), ops.Intersect(),
            ops.Join(lambda x: x, lambda x: x), ops.CartesianProduct(),
            ops.Sample(size=1), ops.PageRank(), ops.CollectionSink(),
        ]
        for op in candidates:
            assert ctx.registry.alternatives_for(op)

    def test_reduceby_has_composite_alternative(self, ctx):
        alts = ctx.registry.alternatives_for(
            ops.ReduceBy(lambda x: x, lambda a, b: a))
        chain_lengths = sorted(len(a.ops) for a in alts
                               if a.platform == "pystreams")
        assert chain_lengths == [1, 2]  # direct + GroupBy+Map (Figure 4)

    def test_target_platform_filters(self, ctx):
        op = ops.Map(lambda x: x).with_target_platform("pgres")
        alts = ctx.registry.alternatives_for(op)
        assert {a.platform for a in alts} == {"pgres"}

    def test_impossible_pin_raises(self, ctx):
        op = ops.PageRank().with_target_platform("pgres")
        with pytest.raises(NoMappingError):
            ctx.registry.alternatives_for(op)

    def test_pagerank_maps_to_graph_platforms(self, ctx):
        platforms = {a.platform
                     for a in ctx.registry.alternatives_for(ops.PageRank())}
        assert {"jgraph", "graphlite"} <= platforms


class TestOptimizerChoices:
    def _wordcount_plan(self, ctx, path):
        from conftest import wordcount
        return wordcount(ctx, path).to_plan()

    def test_small_input_picks_low_overhead_platform(self, ctx):
        ctx.vfs.write("hdfs://tiny", ["a b"] * 20, sim_factor=1.0)
        plan = self._wordcount_plan(ctx, "hdfs://tiny")
        exec_plan = ctx.optimizer().optimize(plan)
        assert exec_plan.platforms() == {"pystreams"}

    def test_large_input_picks_distributed_platform(self, ctx):
        ctx.vfs.write("hdfs://big", ["a b"] * 100, sim_factor=500_000.0)
        plan = self._wordcount_plan(ctx, "hdfs://big")
        exec_plan = ctx.optimizer().optimize(plan)
        assert exec_plan.platforms() & {"sparklite", "flinklite"}

    def test_allowed_platforms_respected(self, ctx):
        ctx.vfs.write("hdfs://big", ["a b"] * 100, sim_factor=500_000.0)
        plan = self._wordcount_plan(ctx, "hdfs://big")
        exec_plan = ctx.optimizer(
            allowed_platforms={"pystreams", "driver"}).optimize(plan)
        assert exec_plan.platforms() == {"pystreams"}

    def test_unsatisfiable_allowed_set_raises(self, ctx):
        ctx.vfs.write("hdfs://f", ["a"], sim_factor=1.0)
        plan = self._wordcount_plan(ctx, "hdfs://f")
        with pytest.raises(OptimizationError):
            ctx.optimizer(allowed_platforms={"pgres", "driver"}).optimize(plan)

    def test_conversions_inserted_between_platforms(self, ctx):
        ctx.pgres.create_table("t", ["k"], [{"k": i} for i in range(10)],
                               sim_factor=1e6)
        plan = (ctx.read_table("t")
                .map(lambda r: (r["k"] % 5, 1), bytes_per_record=16)
                .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1]))
                .to_plan())
        best, __ = ctx.optimizer().pick_best(plan)
        if len({d.platform for d in best.decisions.values()
                if hasattr(d, "platform") and d.platform}) > 1:
            assert any(p.steps for p in best.conversions.values())

    def test_startup_counted_once_per_platform(self, ctx):
        # Two spark-suited branches must not double-charge spark start-up:
        # compare against a single-branch plan cost.
        ctx.vfs.write("hdfs://x", ["a b"] * 100, sim_factor=400_000.0)
        single = self._wordcount_plan(ctx, "hdfs://x")
        best1, __ = ctx.optimizer(
            allowed_platforms={"sparklite", "driver"}).pick_best(single)
        from conftest import wordcount
        two = wordcount(ctx, "hdfs://x")
        plan2 = two.union(wordcount(ctx, "hdfs://x")).to_plan()
        best2, __ = ctx.optimizer(
            allowed_platforms={"sparklite", "driver"}).pick_best(plan2)
        startup = ctx.cluster.profile("sparklite").startup_s
        assert (best2.cost.geometric_mean
                < 2 * best1.cost.geometric_mean + startup)


class TestLosslessPruning:
    def _plan(self, ctx):
        ctx.vfs.write("hdfs://p", [f"{i} {i*2}" for i in range(50)],
                      sim_factor=5_000.0)
        return (ctx.read_text_file("hdfs://p")
                .map(lambda l: tuple(map(int, l.split())))
                .filter(lambda t: t[0] % 2 == 0)
                .distinct()
                .map(lambda t: (t[0] % 10, t[1]))
                .reduce_by_key(lambda t: t[0], lambda a, b: a)
                .sort()
                .to_plan())

    def test_pruning_preserves_the_optimum(self, ctx):
        plan = self._plan(ctx)
        pruned_opt = ctx.optimizer()
        best_pruned, __ = pruned_opt.pick_best(plan)
        full_opt = ctx.optimizer()
        full_opt.prune = False
        best_full, __ = full_opt.pick_best(plan)
        assert best_pruned.cost.geometric_mean == pytest.approx(
            best_full.cost.geometric_mean)

    def test_pruning_shrinks_the_enumeration(self, ctx):
        plan = self._plan(ctx)
        pruned_opt = ctx.optimizer()
        pruned_opt.pick_best(plan)
        full_opt = ctx.optimizer()
        full_opt.prune = False
        full_opt.pick_best(plan)
        assert pruned_opt.last_enumeration_size < full_opt.last_enumeration_size


class TestLoopEnumeration:
    def test_loop_decision_shapes(self, ctx):
        data = ctx.load_collection(list(range(20)), sim_factor=1000.0).cache()
        seed = ctx.load_collection([0])
        out = seed.repeat(
            5, lambda s, inv: inv.sample(size=2, broadcasts=[s])
            .reduce(lambda a, b: a + b),
            invariants=[data])
        plan = out.to_plan()
        best, cards = ctx.optimizer().pick_best(plan)
        loops = [d for d in best.decisions.values()
                 if isinstance(d, LoopDecision)]
        assert len(loops) == 1
        decision = loops[0]
        assert len(decision.input_descriptors) == 2
        # Invariant inputs must land on reusable channels.
        assert decision.input_descriptors[1].reusable

    def test_iterations_scale_loop_cost(self, ctx):
        def build(n):
            data = ctx.load_collection(list(range(20)),
                                       sim_factor=50_000.0).cache()
            seed = ctx.load_collection([0])
            return seed.repeat(
                n, lambda s, inv: inv.sample(size=2, broadcasts=[s])
                .reduce(lambda a, b: a + b),
                invariants=[data]).to_plan()
        cheap, __ = ctx.optimizer().pick_best(build(2))
        dear, __ = ctx.optimizer().pick_best(build(200))
        assert dear.cost.geometric_mean > cheap.cost.geometric_mean
