"""A deliberately wrong module: acquires locks against the hierarchy.

``tests/test_concurrency.py`` feeds this file to the static checker
(which must flag the inversion, the raw lock, the blocking call and the
unguarded write) and executes ``inverted_acquire`` under the debug flag
(which must raise ``LockOrderViolation`` at runtime).  It is never
imported by the package itself.
"""

import threading

from repro.concurrency import OrderedLock

#: RC001: a raw lock outside the registry.
ROGUE = threading.Lock()


class Inverted:
    def __init__(self):
        self.inner = OrderedLock("metrics")
        self.outer = OrderedLock("server.jobs")

    def inverted_acquire(self):
        """RC002 (statically) and LockOrderViolation (at runtime):
        metrics is rank 80, server.jobs is rank 10."""
        with self.inner:
            with self.outer:
                pass

    def blocking_under_lock(self, future):
        """RC003: a lock held across a potentially blocking call."""
        with self.outer:
            future.result()


class JobServer:
    """Shadows the real owner class so registry guards apply (RC004)."""

    def unguarded_write(self, job_id, job):
        self._jobs[job_id] = job
