"""Unit tests for the simulation substrate: clock, profiles, cluster, VFS."""

import pytest
from hypothesis import given, strategies as st

from repro.simulation import (
    CostMeter,
    CriticalPathTracker,
    FileNotFound,
    HardwareProfile,
    PLATFORM_PROFILES,
    SimulatedOutOfMemory,
    VirtualCluster,
    VirtualFileSystem,
    platform_profile,
    scheme_of,
    with_overrides,
)


class TestCostMeter:
    def test_charges_accumulate(self):
        meter = CostMeter()
        meter.charge(1.5, "a")
        meter.charge(0.5, "b", category="io")
        assert meter.total == 2.0
        assert [e.label for e in meter.events] == ["a", "b"]

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge(-1.0, "bad")

    def test_by_category_sums(self):
        meter = CostMeter()
        meter.charge(1.0, "a", category="cpu")
        meter.charge(2.0, "b", category="io")
        meter.charge(3.0, "c", category="cpu")
        assert meter.by_category() == {"cpu": 4.0, "io": 2.0}

    def test_merge_folds_sequentially(self):
        a, b = CostMeter(), CostMeter()
        a.charge(1.0, "x")
        b.charge(2.0, "y")
        a.merge(b)
        assert a.total == 3.0
        assert len(a.events) == 2

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=20))
    def test_total_equals_sum_of_events(self, charges):
        meter = CostMeter()
        for value in charges:
            meter.charge(value, "c")
        assert meter.total == pytest.approx(sum(charges))


class TestCriticalPathTracker:
    def test_sequential_stages_chain(self):
        tracker = CriticalPathTracker()
        m1, m2 = CostMeter(), CostMeter()
        m1.charge(2.0, "a")
        m2.charge(3.0, "b")
        tracker.record("s1", [], m1)
        tracker.record("s2", ["s1"], m2)
        assert tracker.makespan == 5.0

    def test_independent_stages_overlap(self):
        tracker = CriticalPathTracker()
        m1, m2 = CostMeter(), CostMeter()
        m1.charge(2.0, "a")
        m2.charge(3.0, "b")
        tracker.record("s1", [], m1)
        tracker.record("s2", [], m2)
        assert tracker.makespan == 3.0
        assert tracker.busy_time == 5.0

    def test_diamond_takes_slowest_branch(self):
        tracker = CriticalPathTracker()
        for sid, deps, secs in [("a", [], 1.0), ("b", ["a"], 5.0),
                                ("c", ["a"], 2.0), ("d", ["b", "c"], 1.0)]:
            meter = CostMeter()
            meter.charge(secs, sid)
            tracker.record(sid, deps, meter)
        assert tracker.makespan == 7.0

    def test_extend_stage_shifts_duration(self):
        tracker = CriticalPathTracker()
        meter = CostMeter()
        meter.charge(1.0, "a")
        tracker.record("s1", [], meter)
        tracker.extend_stage("s1", 2.0, "extra")
        assert tracker.makespan == 3.0

    def test_empty_tracker_has_zero_makespan(self):
        assert CriticalPathTracker().makespan == 0.0


class TestProfiles:
    def test_all_builtin_platforms_have_profiles(self):
        for name in ("pystreams", "sparklite", "flinklite", "pgres",
                     "graphlite", "jgraph"):
            assert platform_profile(name).name == name

    def test_cpu_seconds_scales_with_parallelism(self):
        spark = platform_profile("sparklite")
        single = platform_profile("pystreams")
        n = 1_000_000
        assert spark.cpu_seconds(n) < single.cpu_seconds(n)

    def test_cpu_seconds_zero_records(self):
        assert platform_profile("pystreams").cpu_seconds(0) == 0.0

    def test_io_and_transfer_seconds(self):
        p = platform_profile("pystreams")
        assert p.io_seconds(100.0) == pytest.approx(100.0 / p.io_mb_per_s)
        assert p.transfer_seconds(0) == 0.0

    def test_with_overrides_replaces_field(self):
        slow = with_overrides("sparklite", startup_s=99.0)
        assert slow.startup_s == 99.0
        assert PLATFORM_PROFILES["sparklite"].startup_s != 99.0

    def test_hardware_totals(self):
        hw = HardwareProfile(nodes=10, cores_per_node=4)
        assert hw.total_cores == 40
        assert hw.aggregate_disk_mb_per_s == 10 * hw.disk_mb_per_s

    def test_big_data_platforms_have_startup_cost(self):
        # The crux of the platform-independence experiments.
        assert platform_profile("sparklite").startup_s > 1.0
        assert platform_profile("pystreams").startup_s == 0.0


class TestVirtualCluster:
    def test_memory_check_passes_below_cap(self):
        VirtualCluster().check_memory("pystreams", 1.0)

    def test_memory_check_raises_above_cap(self):
        cluster = VirtualCluster()
        cap = cluster.profile("jgraph").memory_cap_mb
        with pytest.raises(SimulatedOutOfMemory) as err:
            cluster.check_memory("jgraph", cap + 1)
        assert err.value.platform == "jgraph"

    def test_set_profile_overrides(self):
        cluster = VirtualCluster()
        cluster.set_profile(with_overrides("jgraph", memory_cap_mb=1.0))
        with pytest.raises(SimulatedOutOfMemory):
            cluster.check_memory("jgraph", 2.0)


class TestVfs:
    def test_roundtrip_and_metadata(self):
        vfs = VirtualFileSystem()
        vf = vfs.write("hdfs://a/b.txt", ["x", "y"], sim_factor=10.0,
                       bytes_per_record=50.0)
        assert vf.sim_record_count == 20.0
        assert vf.sim_mb == pytest.approx(20 * 50 / 1e6)
        assert vfs.read("hdfs://a/b.txt").records == ["x", "y"]

    def test_scheme_validation(self):
        assert scheme_of("hdfs://x") == "hdfs"
        assert scheme_of("file://x") == "file"
        with pytest.raises(ValueError):
            scheme_of("s3://bucket/x")

    def test_missing_file_raises(self):
        vfs = VirtualFileSystem()
        with pytest.raises(FileNotFound):
            vfs.read("hdfs://nope")
        with pytest.raises(FileNotFound):
            vfs.delete("hdfs://nope")

    def test_overwrite_replaces(self):
        vfs = VirtualFileSystem()
        vfs.write("hdfs://f", [1])
        vfs.write("hdfs://f", [1, 2])
        assert len(vfs.read("hdfs://f").records) == 2

    def test_listdir_prefix(self):
        vfs = VirtualFileSystem()
        vfs.write("hdfs://d/a", [])
        vfs.write("hdfs://d/b", [])
        vfs.write("file://d/c", [])
        assert vfs.listdir("hdfs://d/") == ["hdfs://d/a", "hdfs://d/b"]

    def test_delete_removes(self):
        vfs = VirtualFileSystem()
        vfs.write("file://x", [1])
        vfs.delete("file://x")
        assert not vfs.exists("file://x")
