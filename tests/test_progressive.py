"""Tests for progressive (re-)optimization."""

import pytest

from repro import RheemContext
from repro.core.udf import Udf


def _lookup_join_plan(ctx, filter_selectivity_hint):
    """Big filtered input joined with a driver-side lookup collection —
    the Figure 10(b) shape: a wrong filter hint makes the initial plan put
    the join on the wrong platform."""
    if not ctx.vfs.exists("hdfs://data/events.csv"):
        rows = [f"item{i},{i % 1000}" for i in range(4000)]
        ctx.vfs.write("hdfs://data/events.csv", rows, sim_factor=10_000.0,
                      bytes_per_record=100.0)
    lookup = ctx.load_collection([(k, f"cat{k % 7}") for k in range(1000)],
                                 bytes_per_record=20)
    hinted = Udf(lambda t: t[1] >= 1, selectivity=filter_selectivity_hint,
                 name="hinted-filter")
    events = (ctx.read_text_file("hdfs://data/events.csv")
              .map(lambda l: (l.split(",")[0], int(l.split(",")[1])),
                   name="parse")
              .filter(hinted))
    joined = events.join(lookup, lambda e: e[1], lambda kv: kv[0],
                         selectivity=1.0 / 1000)
    return (joined.map(lambda p: (p[1][1], 1), bytes_per_record=12)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1]))
            .to_plan())


class TestProgressiveOptimization:
    def test_replans_on_bad_hint_and_speeds_up(self):
        ctx_off = RheemContext()
        off = ctx_off.execute(_lookup_join_plan(ctx_off, 0.0001))
        ctx_on = RheemContext()
        report = ctx_on.execute_progressive(
            _lookup_join_plan(ctx_on, 0.0001), tolerance=2.0)
        assert report.replans >= 1
        assert report.result.runtime < off.runtime / 2
        assert sorted(report.result.output) == sorted(off.output)

    def test_no_replan_when_hint_is_right(self):
        ctx = RheemContext()
        report = ctx.execute_progressive(
            _lookup_join_plan(ctx, 0.999), tolerance=2.0)
        assert report.replans == 0

    def test_replan_count_bounded(self):
        ctx = RheemContext()
        report = ctx.execute_progressive(
            _lookup_join_plan(ctx, 0.0001), max_replans=0)
        assert report.replans == 0  # checkpoints disabled by the bound

    def test_progressive_flag_on_context_execute(self):
        ctx = RheemContext()
        res = ctx.execute(_lookup_join_plan(ctx, 0.0001), progressive=True)
        totals = dict(res.output)
        assert sum(totals.values()) == 3996  # rows with value >= 1


class TestPauseResume:
    def _plan(self, ctx):
        ctx.vfs.write("hdfs://pr/x.txt", [f"{i}" for i in range(100)],
                      sim_factor=1000.0)
        parsed = ctx.read_text_file("hdfs://pr/x.txt").map(int, name="parse")
        return parsed, (parsed.filter(lambda v: v % 2 == 0, name="evens")
                        .sort()
                        .to_plan())

    def test_pause_inspect_resume(self):
        from repro import RheemContext
        ctx = RheemContext()
        parsed, plan = self._plan(ctx)
        paused = ctx.execute_paused(plan, break_after={parsed.op.id})
        from repro.core.progressive import PausedJob
        assert isinstance(paused, PausedJob)
        assert parsed.op.id in paused.completed
        snapshot = paused.inspect(parsed.op.id)
        # The materialized intermediate is observable mid-job.
        values = (snapshot.to_list() if hasattr(snapshot, "to_list")
                  else list(snapshot))
        assert sorted(values) == list(range(100))
        result = ctx.resume(paused)
        assert result.output == sorted(v for v in range(100) if v % 2 == 0)

    def test_breakpoint_on_last_operator_finishes(self):
        from repro import RheemContext
        from repro.core.executor import ExecutionResult
        ctx = RheemContext()
        __, plan = self._plan(ctx)
        sink_id = plan.sinks[0].id
        outcome = ctx.execute_paused(plan, break_after={sink_id})
        assert isinstance(outcome, ExecutionResult)
