"""Integration tests for the relational platform inside full plans:
index scans, projection pushdown, exports, and loads."""

import pytest

from repro import RheemContext


def _people(ctx, n=200, sim_factor=50_000.0):
    rows = [{"pid": i, "age": i % 90, "city": f"c{i % 7}"} for i in range(n)]
    ctx.pgres.create_table("people", ["pid", "age", "city"], rows,
                           sim_factor=sim_factor, bytes_per_row=120.0)
    return rows


class TestIndexScans:
    def test_filter_range_uses_index_when_present(self):
        # Same query, with and without an index on the filtered column.
        def run(with_index):
            ctx = RheemContext()
            _people(ctx)
            if with_index:
                ctx.pgres.create_index("people", "age")
            dq = (ctx.read_table("people")
                  .filter_range("age", 80, 89, selectivity=10 / 90))
            return dq.execute(allowed_platforms={"pgres", "driver"})

        indexed = run(True)
        scanned = run(False)
        assert sorted(r["pid"] for r in indexed.output) == \
            sorted(r["pid"] for r in scanned.output)
        # The index scan touches ~11% of the rows; the seq scan all of them.
        assert indexed.runtime < scanned.runtime

    def test_projection_breaks_index_use(self):
        # Filtering PROJECTED rows cannot use the base-table index (the
        # relation is derived), and must still be correct.
        ctx = RheemContext()
        _people(ctx)
        ctx.pgres.create_index("people", "age")
        out = (ctx.read_table("people", projection=["pid", "age"])
               .filter_range("age", 0, 0, selectivity=1 / 90)
               .collect(allowed_platforms={"pgres", "driver"}))
        assert all(set(r) == {"pid", "age"} and r["age"] == 0 for r in out)

    def test_filter_without_range_metadata_seq_scans(self):
        ctx = RheemContext()
        _people(ctx)
        ctx.pgres.create_index("people", "age")
        out = (ctx.read_table("people")
               .filter(lambda r: r["age"] == 5, name="udf-filter")
               .collect(allowed_platforms={"pgres", "driver"}))
        assert all(r["age"] == 5 for r in out)


class TestProjectionPushdown:
    def test_projection_shrinks_export_volume(self):
        def run(projection):
            ctx = RheemContext()
            _people(ctx, sim_factor=200_000.0)
            dq = ctx.read_table("people", projection=projection)
            # Force the aggregation off pgres so the rows must be exported.
            return (dq.map(lambda r: (r["age"], 1), bytes_per_record=16)
                    .with_target_platform("flinklite")
                    .reduce_by_key(lambda t: t[0],
                                   lambda a, b: (a[0], a[1] + b[1]))
                    .execute())

        narrow = run(["age"])
        wide = run(None)
        assert sorted(narrow.output) == sorted(wide.output)
        assert narrow.runtime < wide.runtime  # fewer exported bytes


class TestLoadPaths:
    def test_collection_can_be_loaded_into_pgres(self):
        # Pinning relational work on pgres over driver data triggers the
        # load conversion (temp table creation).
        ctx = RheemContext()
        rows = [{"k": i % 3, "v": i} for i in range(30)]
        out = (ctx.load_collection(rows, bytes_per_record=40)
               .filter_range("v", 10, None, selectivity=2 / 3)
               .with_target_platform("pgres")
               .collect())
        assert sorted(r["v"] for r in out) == list(range(10, 30))
        # The load created a temporary relation in the catalog.
        assert any(t.startswith("_rheem_tmp") for t in ctx.pgres.table_names())

    def test_local_file_copy_into_pgres(self):
        ctx = RheemContext()
        rows = [{"k": i} for i in range(10)]
        ctx.vfs.write("file://data/rows", rows, sim_factor=10.0,
                      bytes_per_record=30.0)
        from repro.core.channels import LOCAL_FILE, Channel
        conv = [c for c in ctx.graph.conversions_from(LOCAL_FILE.name)
                if c.target.name == "pgres.relation"][0]
        from repro.core.execution import ExecutionContext
        ectx = ExecutionContext(cluster=ctx.cluster, pgres=ctx.pgres)
        out = conv.apply(Channel(LOCAL_FILE, "file://data/rows", 10.0, 30.0,
                                 10), ectx)
        assert len(out.payload.rows) == 10
        assert out.descriptor.name == "pgres.relation"
