"""Tests for the cost learner: loss, GA fitting, log generation."""

import pytest

from repro.core.cost import kind_params
from repro.core.monitor import OperatorObservation, StageObservation
from repro.learn import (
    GeneratorConfig,
    GeneticCostLearner,
    LogGenerator,
    corpus_loss,
    predict_stage,
    relative_loss,
    stage_weights,
)
from repro.simulation import VirtualCluster


def _record(stage_id, platform, duration, ops, known=0.0):
    return StageObservation(stage_id, platform, duration, known,
                            [OperatorObservation(platform, kind, 1.0, cin, cout)
                             for kind, cin, cout in ops])


class TestLoss:
    def test_perfect_prediction_loss_floor(self):
        # The smoothing keeps the loss > 0 even for perfect predictions.
        assert relative_loss(10.0, 10.0, smoothing=1.0) == \
            pytest.approx((1 / 11) ** 2)

    def test_loss_grows_with_error(self):
        assert relative_loss(10, 20) > relative_loss(10, 11)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            relative_loss(1, 1, smoothing=0)

    def test_stage_weights_favor_frequent_operators(self):
        records = [
            _record("s1", "p", 1.0, [("map", 10, 10)]),
            _record("s2", "p", 1.0, [("map", 10, 10)]),
            _record("s3", "p", 1.0, [("rare", 10, 10)]),
        ]
        w = stage_weights(records)
        assert w[0] == w[1] > w[2]

    def test_corpus_loss_empty(self):
        assert corpus_loss([], lambda r: 0.0) == 0.0


class TestPrediction:
    def test_predict_stage_uses_profile_units(self):
        cluster = VirtualCluster()
        record = _record("s", "pystreams", 0.0, [("map", 1e6, 1e6)], known=0.5)
        params = {"pystreams.map": kind_params("map")}
        # 1e6 records * 1e-6 s + known 0.5
        assert predict_stage(record, params, cluster) == pytest.approx(1.5)

    def test_unknown_operator_contributes_nothing(self):
        cluster = VirtualCluster()
        record = _record("s", "pystreams", 0.0, [("map", 1e6, 1e6)], known=0.5)
        assert predict_stage(record, {}, cluster) == 0.5


class TestGenerator:
    def test_produces_records_for_every_topology(self):
        config = GeneratorConfig(sizes=(100,), sim_factors=(50.0,),
                                 selectivities=(0.5,), udf_weights=(1.0,))
        records = LogGenerator(config).generate()
        assert records
        platforms = {r.platform for r in records}
        assert {"pystreams", "sparklite", "flinklite"} <= platforms

    def test_records_have_positive_durations(self):
        config = GeneratorConfig(sizes=(100,), sim_factors=(50.0,),
                                 selectivities=(0.5,), udf_weights=(1.0,))
        records = LogGenerator(config).generate()
        assert all(r.duration_s >= 0 for r in records)


class TestGeneticLearner:
    def _records(self):
        config = GeneratorConfig(sizes=(150,), sim_factors=(2_000.0,),
                                 selectivities=(0.4,), udf_weights=(1.0, 3.0))
        return LogGenerator(config).generate()

    def test_fit_never_worse_than_defaults(self):
        cluster = VirtualCluster()
        records = self._records()
        learner = GeneticCostLearner(cluster, records, seed=3)
        fit = learner.fit(population_size=24, generations=20)
        defaults = {k: kind_params(k.split(".", 1)[1]) for k in learner.keys}
        base = corpus_loss(records,
                           lambda r: predict_stage(r, defaults, cluster))
        assert fit.loss <= base + 1e-9
        assert len(fit.history) == 20
        assert fit.history == sorted(fit.history, reverse=True) or \
            min(fit.history) == fit.history[-1]

    def test_fit_is_deterministic_for_a_seed(self):
        cluster = VirtualCluster()
        records = self._records()
        a = GeneticCostLearner(cluster, records, seed=5).fit(12, 8)
        b = GeneticCostLearner(cluster, records, seed=5).fit(12, 8)
        assert a.loss == b.loss

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            GeneticCostLearner(VirtualCluster(), []).fit()

    def test_learned_params_bounded(self):
        cluster = VirtualCluster()
        learner = GeneticCostLearner(cluster, self._records(), seed=9)
        fit = learner.fit(population_size=16, generations=10)
        for params in fit.params.values():
            assert 0 <= params.alpha <= learner.ALPHA_RANGE[1]
            assert 0 <= params.beta <= learner.BETA_RANGE[1]
            assert 0 <= params.delta <= learner.DELTA_RANGE[1]


class TestPersistence:
    def test_json_roundtrip(self, tmp_path):
        from repro.core.cost import OperatorCostParams
        from repro.learn import load_params, params_from_json, \
            params_to_json, save_params

        params = {"sparklite.map": OperatorCostParams(1.5, 0.25, 0.01),
                  "pystreams.filter": OperatorCostParams(0.9, 0.0, 0.0)}
        assert params_from_json(params_to_json(params)) == params
        path = tmp_path / "cost_params.json"
        save_params(params, path)
        assert load_params(path) == params

    def test_malformed_document_rejected(self):
        from repro.learn import params_from_json
        with pytest.raises(ValueError):
            params_from_json('{"x": {"alpha": 1}}')
        with pytest.raises(ValueError):
            params_from_json('[1, 2]')

    def test_loaded_params_drive_a_context(self, tmp_path):
        from repro import RheemContext
        from repro.core.cost import OperatorCostParams
        from repro.learn import load_params, save_params

        save_params({"pystreams.map": OperatorCostParams(0.0, 0.0, 42.0)},
                    tmp_path / "p.json")
        ctx = RheemContext(cost_params=load_params(tmp_path / "p.json"))
        cost = ctx.cost_model.operator_cost(
            "pystreams", "map",
            __import__("repro.core.cardinality",
                       fromlist=["CardinalityEstimate"]
                       ).CardinalityEstimate.exact(10),
            __import__("repro.core.cardinality",
                       fromlist=["CardinalityEstimate"]
                       ).CardinalityEstimate.exact(10))
        assert cost.geometric_mean == pytest.approx(42.0)


class TestConversionOnlyStages:
    """Stages without operator observations (pure channel conversions)
    must still reach the calibration log — dropping their known_seconds
    would bias the fit."""

    def _conversion_timing(self, seconds=2.0):
        from repro.simulation.clock import CostMeter, CriticalPathTracker

        meter = CostMeter()
        meter.charge(seconds, "hdfs.read", category="io")
        return CriticalPathTracker().record("conv", [], meter)

    def test_monitor_records_conversion_only_stages(self):
        from repro.core.monitor import Monitor

        monitor = Monitor()
        monitor.record_stage(self._conversion_timing(2.0), "sparklite")
        (obs,) = monitor.stage_observations
        assert obs.operators == []
        assert obs.known_seconds == pytest.approx(2.0)
        assert obs.platform == "sparklite"

    def test_prediction_falls_back_to_known_seconds(self):
        record = StageObservation("conv", "sparklite", 2.0, 2.0, [])
        assert predict_stage(record, {}, VirtualCluster()) == 2.0

    def test_learner_consumes_mixed_logs(self):
        config = GeneratorConfig(sizes=(150,), sim_factors=(2_000.0,),
                                 selectivities=(0.4,), udf_weights=(1.0,))
        records = LogGenerator(config).generate()
        records.append(StageObservation("conv", "sparklite", 2.0, 2.0, []))
        learner = GeneticCostLearner(VirtualCluster(), records, seed=3)
        fit = learner.fit(population_size=12, generations=6)
        assert fit.loss >= 0
        # No parameter key is minted for an operator-free stage.
        assert all("conv" not in key for key in learner.keys)

    def test_fit_reports_metrics(self):
        from repro.trace import MetricsRegistry

        registry = MetricsRegistry()
        config = GeneratorConfig(sizes=(150,), sim_factors=(2_000.0,),
                                 selectivities=(0.4,), udf_weights=(1.0,))
        records = LogGenerator(config).generate()
        learner = GeneticCostLearner(VirtualCluster(), records, seed=3,
                                     metrics=registry)
        fit = learner.fit(population_size=12, generations=6)
        snap = registry.snapshot()
        assert snap["counters"]["learn.fits"] == 1
        assert snap["counters"]["learn.generations"] == 6
        assert snap["gauges"]["learn.best_loss"] == pytest.approx(fit.loss)
