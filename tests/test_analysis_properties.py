"""Property-based tests for the static analyzer over randomized pipelines.

Two invariants:

* any randomly built pipeline that lints without errors also optimizes —
  the analyzer never rejects a plan the optimizer could handle;
* a known-bad mutation (type break, dead operator, feedback edge) applied
  to a clean plan triggers exactly the rule that owns that defect class.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RheemContext
from repro.analysis import analyze_plan
from repro.core.optimizer import PlanAnalysisError

steps = st.lists(
    st.sampled_from([
        ("map", 2), ("map", 5),
        ("filter", 2), ("filter", 3),
        ("distinct", None),
        ("sort", None),
        ("union", None),
        ("pair", 4),
        ("reduceby", None),
    ]),
    max_size=6,
)


def _build(ctx, pipeline):
    dq = ctx.load_collection(list(range(40)))
    paired = False
    for verb, param in pipeline:
        if verb == "map" and not paired:
            dq = dq.map(lambda x, __p=param: x * __p)
        elif verb == "filter" and not paired:
            dq = dq.filter(lambda x, __p=param: x % __p != 0)
        elif verb == "distinct":
            dq = dq.distinct()
        elif verb == "sort" and not paired:
            dq = dq.sort()
        elif verb == "union" and not paired:
            dq = dq.union(ctx.load_collection(list(range(10))))
        elif verb == "pair" and not paired:
            dq = dq.map(lambda x, __p=param: (x % __p, x))
            paired = True
        elif verb == "reduceby" and paired:
            dq = dq.reduce_by_key(lambda t: t[0],
                                  lambda a, b: (a[0], a[1] + b[1]))
            dq = dq.map(lambda t: t[1])
            paired = False
    return dq


class TestLintCleanPlansOptimize:
    @given(steps)
    @settings(max_examples=30, deadline=None)
    def test_no_errors_implies_optimizable(self, pipeline):
        ctx = RheemContext()
        plan = _build(ctx, pipeline).to_plan()
        report = analyze_plan(plan, ctx)
        assert report.ok, report.render()
        best, cards = ctx.optimizer().pick_best(plan)
        assert best is not None and cards

    @given(steps)
    @settings(max_examples=15, deadline=None)
    def test_analysis_is_idempotent(self, pipeline):
        ctx = RheemContext()
        plan = _build(ctx, pipeline).to_plan()
        first = analyze_plan(plan, ctx)
        second = analyze_plan(plan, ctx)
        assert [d.rule_id for d in first] == [d.rule_id for d in second]


class TestBadMutationsAreCaught:
    """Each defect class trips exactly its own rule."""

    @given(steps)
    @settings(max_examples=15, deadline=None)
    def test_type_break_triggers_rp002(self, pipeline):
        ctx = RheemContext()

        def to_num(x) -> float:
            return float(x)

        def shout(s: str) -> str:
            return s.upper()

        # untyped lambdas erase type knowledge (optimistic inference), so
        # pin the tail type with an annotated UDF; a str-typed consumer on
        # top of a float producer is then a provable break on any pipeline
        plan = _build(ctx, pipeline).map(to_num).map(shout).to_plan()
        report = analyze_plan(plan, ctx)
        assert "RP002" in report.rule_ids(), report.render()
        assert not report.ok
        with pytest.raises(PlanAnalysisError):
            ctx.optimizer().pick_best(plan)

    @given(steps)
    @settings(max_examples=15, deadline=None)
    def test_dead_operator_triggers_rp001(self, pipeline):
        ctx = RheemContext()
        dq = _build(ctx, pipeline)
        dq.map(lambda x: x)  # dangling branch off the live pipeline
        plan = dq.to_plan()
        report = analyze_plan(plan, ctx)
        assert "RP001" in report.rule_ids(), report.render()
        assert report.ok  # dead code warns, it does not abort

    @given(steps)
    @settings(max_examples=15, deadline=None)
    def test_feedback_edge_triggers_rp102(self, pipeline):
        ctx = RheemContext()
        plan = _build(ctx, pipeline).map(lambda x: x).map(
            lambda x: x).to_plan()
        topo = plan.operators()
        downstream, upstream = topo[-2], topo[-3]
        upstream.broadcast(downstream)  # feedback via side input
        report = analyze_plan(plan, ctx)
        assert report.rule_ids() == {"RP102"}, report.render()
        assert not report.ok
