"""Tests for channels and the channel conversion graph."""

import pytest
from hypothesis import given, strategies as st

from repro.core.channels import (
    Channel,
    ChannelConversionError,
    ChannelConversionGraph,
    ChannelDescriptor,
    Conversion,
)

A = ChannelDescriptor("t.a", "t", True)
B = ChannelDescriptor("t.b", "t", False)
C = ChannelDescriptor("t.c", "t", True)
D = ChannelDescriptor("t.d", "t", True)


def _conv(src, dst, rate, overhead=0.0):
    return Conversion(src, dst, lambda ch, ctx: ch.with_payload(
        ch.payload, dst, ch.actual_count), mb_per_s=rate, overhead_s=overhead)


def _graph(edges):
    graph = ChannelConversionGraph()
    for src, dst, rate, overhead in edges:
        graph.register_conversion(_conv(src, dst, rate, overhead))
    return graph


class TestChannel:
    def test_sim_metadata(self):
        ch = Channel(A, [1, 2], sim_factor=100.0, bytes_per_record=50.0,
                     actual_count=2)
        assert ch.sim_cardinality == 200.0
        assert ch.sim_mb == pytest.approx(200 * 50 / 1e6)

    def test_unmeasured_cardinality_raises(self):
        with pytest.raises(ValueError):
            Channel(A, None).sim_cardinality

    def test_with_payload_keeps_metadata(self):
        ch = Channel(A, [1], sim_factor=3.0, bytes_per_record=7.0,
                     actual_count=1)
        out = ch.with_payload([1, 2], B, actual_count=2)
        assert out.descriptor == B
        assert out.sim_factor == 3.0
        assert out.bytes_per_record == 7.0


class TestRegistry:
    def test_conflicting_descriptor_rejected(self):
        graph = ChannelConversionGraph()
        graph.register_channel(A)
        with pytest.raises(ValueError):
            graph.register_channel(ChannelDescriptor("t.a", "other", True))

    def test_unknown_descriptor_lookup(self):
        with pytest.raises(ChannelConversionError):
            ChannelConversionGraph().descriptor("nope")


class TestCheapestPath:
    def test_identity_path_is_free(self):
        graph = _graph([(A, B, 100, 0)])
        path = graph.cheapest_path(A, A, 1000)
        assert path.steps == [] and path.cost == 0.0

    def test_direct_vs_detour(self):
        # A->B direct is slow; A->C->B is cheaper.
        graph = _graph([(A, B, 1, 0), (A, C, 1000, 0), (C, B, 1000, 0)])
        path = graph.cheapest_path(A, B, 1_000_000, 100)  # 100 MB
        assert [s.target.name for s in path.steps] == ["t.c", "t.b"]

    def test_overheads_flip_choice_for_small_data(self):
        graph = _graph([(A, B, 1, 0.0), (A, C, 1000, 5.0), (C, B, 1000, 5.0)])
        small = graph.cheapest_path(A, B, 10, 100)
        assert len(small.steps) == 1  # direct wins when data is tiny

    def test_unreachable_raises(self):
        graph = _graph([(A, B, 100, 0)])
        with pytest.raises(ChannelConversionError):
            graph.cheapest_path(B, A, 10)

    def test_cost_matches_sum_of_steps(self):
        graph = _graph([(A, C, 10, 1.0), (C, B, 20, 2.0)])
        path = graph.cheapest_path(A, B, 1_000_000, 100)
        expected = (1.0 + 100 / 10) + (2.0 + 100 / 20)
        assert path.cost == pytest.approx(expected)


class TestMulticast:
    def test_single_target_equals_cheapest_path(self):
        graph = _graph([(A, B, 100, 0.5)])
        tree = graph.multicast_tree(A, [B], 1000, 100)
        assert tree.cost == graph.cheapest_path(A, B, 1000, 100).cost

    def test_shared_prefix_counted_once(self):
        # A -> C (expensive), then C -> B and C -> D (cheap): the A->C hop
        # should be paid once for both targets.
        graph = _graph([(A, C, 1, 0), (C, B, 1000, 0), (C, D, 1000, 0)])
        tree = graph.multicast_tree(A, [B, D], 1_000_000, 100)
        a_to_c = 100 / 1
        assert tree.cost == pytest.approx(a_to_c + 0.1 + 0.1)

    def test_branching_requires_reusable_node(self):
        # B is non-reusable: the tree may not SHARE a fan-out at B — it must
        # either pay the A->B hop once per target, or branch at reusable A.
        edges = [(A, B, 10, 0), (B, C, 10, 0), (B, D, 10, 0)]
        tree = _graph(edges).multicast_tree(A, [C, D], 1_000_000, 100)
        assert tree.cost == pytest.approx(2 * 10 + 2 * 10)  # A->B paid twice
        # With a reusable middle channel the shared hop is paid once.
        b_reusable = ChannelDescriptor("t.b2", "t", True)
        edges2 = [(A, b_reusable, 10, 0), (b_reusable, C, 10, 0),
                  (b_reusable, D, 10, 0)]
        tree2 = _graph(edges2).multicast_tree(A, [C, D], 1_000_000, 100)
        assert tree2.cost == pytest.approx(10 + 10 + 10)

    def test_unreachable_target_raises(self):
        graph = _graph([(A, B, 10, 0)])
        with pytest.raises(ChannelConversionError):
            graph.multicast_tree(A, [B, C], 10)

    def test_apply_shares_common_steps(self):
        calls = []

        def make(src, dst):
            def convert(ch, ctx):
                calls.append(dst.name)
                return ch.with_payload(ch.payload, dst, ch.actual_count)
            return Conversion(src, dst, convert, mb_per_s=100)

        graph = ChannelConversionGraph()
        for conv in (make(A, C), make(C, B), make(C, D)):
            graph.register_conversion(conv)
        tree = graph.multicast_tree(A, [B, D], 100, 100)

        class Ctx:
            from repro.simulation import CostMeter
            meter = CostMeter()
        out = tree.apply(Channel(A, [1], actual_count=1), Ctx())
        assert set(out) == {"t.b", "t.d"}
        assert calls.count("t.c") == 1  # shared hop executed once

    @given(st.integers(1, 4))
    def test_tree_cost_never_exceeds_independent_paths(self, k):
        graph = _graph([(A, C, 5, 0.1), (C, B, 7, 0.1), (C, D, 9, 0.1),
                        (A, B, 2, 0.1), (A, D, 3, 0.1)])
        targets = [B, D][:k % 2 + 1]
        tree = graph.multicast_tree(A, targets, 10_000, 100)
        independent = sum(graph.cheapest_path(A, t, 10_000, 100).cost
                          for t in targets)
        assert tree.cost <= independent + 1e-9


class TestConversionMemoCache:
    def test_repeat_lookup_hits_without_a_new_dijkstra(self):
        graph = _graph([(A, C, 1000, 0), (C, B, 1000, 0)])
        first = graph.cheapest_path(A, B, 1_000_000, 100)
        second = graph.cheapest_path(A, B, 1_000_000, 100)
        assert [s.name for s in first.steps] == [s.name for s in second.steps]
        assert graph.cache_stats["path_hits"] == 1
        assert graph.cache_stats["dijkstra_runs"] == 1

    def test_one_dijkstra_row_serves_all_targets(self):
        graph = _graph([(A, B, 100, 0), (A, C, 100, 0), (A, D, 100, 0)])
        graph.cheapest_path(A, B, 1000, 100)
        graph.cheapest_path(A, C, 1000, 100)
        graph.cheapest_path(A, D, 1000, 100)
        assert graph.cache_stats["dijkstra_runs"] == 1
        assert graph.cache_stats["path_hits"] == 2

    def test_costs_are_exact_not_banded(self):
        # Volumes in the same quantization band share the cached path
        # STRUCTURE, but the returned cost is always recomputed exactly.
        graph = _graph([(A, B, 10, 1.5)])
        lo = graph.cheapest_path(A, B, 1_000, 100)
        hi = graph.cheapest_path(A, B, 1_040, 100)  # same quarter-octave
        assert graph.cache_stats["path_hits"] == 1
        assert lo.cost == pytest.approx(1.5 + 1_000 * 100 / 1e6 / 10)
        assert hi.cost == pytest.approx(1.5 + 1_040 * 100 / 1e6 / 10)

    def test_register_conversion_invalidates_cached_paths(self):
        graph = _graph([(A, C, 10, 0), (C, B, 10, 0)])
        before = graph.cheapest_path(A, B, 1_000_000, 100)
        assert len(before.steps) == 2
        # A much faster direct conversion appears (new platform plugged in):
        # the memoized detour must NOT survive.
        graph.register_conversion(_conv(A, B, 1_000_000))
        after = graph.cheapest_path(A, B, 1_000_000, 100)
        assert [s.target.name for s in after.steps] == ["t.b"]
        assert after.cost < before.cost
        assert graph.cache_stats["invalidations"] == 1

    def test_register_channel_of_known_descriptor_keeps_cache(self):
        graph = _graph([(A, B, 10, 0)])
        graph.cheapest_path(A, B, 1000, 100)
        graph.register_channel(A)  # re-registration, no structural change
        graph.cheapest_path(A, B, 1000, 100)
        assert graph.cache_stats["path_hits"] == 1
        assert graph.cache_stats["invalidations"] == 0

    def test_caching_off_still_correct(self):
        graph = _graph([(A, C, 1000, 0), (C, B, 1000, 0), (A, B, 1, 0)])
        graph.caching = False
        path = graph.cheapest_path(A, B, 1_000_000, 100)
        assert [s.target.name for s in path.steps] == ["t.c", "t.b"]
        assert graph.cache_stats["path_hits"] == 0

    def test_tree_cache_hit_recosts_exactly(self):
        graph = _graph([(A, C, 1, 0), (C, B, 1000, 0), (C, D, 1000, 0)])
        first = graph.multicast_tree(A, [B, D], 1_000_000, 100)
        second = graph.multicast_tree(A, [B, D], 1_010_000, 100)
        assert graph.cache_stats["tree_hits"] == 1
        assert first.cost == pytest.approx(100 / 1 + 0.1 + 0.1)
        assert second.cost == pytest.approx(101 / 1 + 0.101 + 0.101)


class TestMulticastReachability:
    def test_disconnected_descriptor_is_pruned_from_the_dp(self):
        # An isolated descriptor (registered, no edges) must not enlarge
        # the Steiner DP or break tree construction.
        graph = _graph([(A, C, 10, 0), (C, B, 1000, 0), (C, D, 1000, 0)])
        island = ChannelDescriptor("t.island", "t", True)
        graph.register_channel(island)
        tree = graph.multicast_tree(A, [B, D], 1_000_000, 100)
        assert set(tree.paths) == {"t.b", "t.d"}
        assert "t.island" not in graph.reachable_from("t.a")

    def test_unreachable_target_error_names_the_island(self):
        graph = _graph([(A, B, 10, 0)])
        island = ChannelDescriptor("t.island", "t", True)
        graph.register_channel(island)
        with pytest.raises(ChannelConversionError, match="island"):
            graph.multicast_tree(A, [B, island], 1000, 100)
