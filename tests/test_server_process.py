"""Tests for the process-pool job-server backend: sticky routing,
cost-parameter broadcast, cross-process metrics aggregation, priority /
fair-share dispatch, backpressure hints — and the worker-kill scenario
(a shard killed mid-job must land the job in a terminal failed state,
release its slot, re-map its fingerprint and never double-publish
counters)."""

import json
import os
import signal
import threading
import time

import pytest

from repro import RheemContext
from repro.core.cost import OperatorCostParams
from repro.server import (
    AdmissionError,
    JobServer,
    JobState,
    ShardDied,
    ShardPool,
    document_fingerprint,
)


def _doc(payload=0, marker="m"):
    """A small unique-payload document (distinct plans per payload)."""
    return {
        "operators": [
            {"name": "src", "kind": "collection_source",
             "data": [payload + k for k in range(6)]},
            {"name": marker, "kind": "map", "input": "src",
             "expr": "x * 2"},
        ],
        "sink": {"name": marker},
    }


SLEEP_DOC = {
    "operators": [
        {"name": "src", "kind": "collection_source", "data": [1, 2]},
        {"name": "slow", "kind": "map", "input": "src",
         "expr": "(__import__('time').sleep(0.2), x)[1]"},
    ],
    "sink": {"name": "slow"},
}

HANG_DOC = {
    "operators": [
        {"name": "src", "kind": "collection_source", "data": [1]},
        {"name": "hang", "kind": "map", "input": "src",
         "expr": "(__import__('time').sleep(60), x)[1]"},
    ],
    "sink": {"name": "hang"},
}


@pytest.fixture(scope="module")
def server():
    """One 3-shard process server shared by the read-only tests."""
    srv = JobServer(workers=3, backend="process", queue_size=16,
                    tracing=False)
    yield srv
    srv.shutdown()


class TestFingerprint:
    def test_stable_and_envelope_blind(self):
        doc = _doc(7)
        assert document_fingerprint(doc) == document_fingerprint(_doc(7))
        tagged = dict(doc, tenant="acme", priority=5)
        assert document_fingerprint(tagged) == document_fingerprint(doc)

    def test_distinct_plans_distinct_fingerprints(self):
        assert document_fingerprint(_doc(1)) != document_fingerprint(_doc(2))


class TestProcessBackend:
    def test_results_match_thread_backend_bit_for_bit(self, server):
        docs = [_doc(i * 100) for i in range(6)]
        with JobServer(RheemContext(), workers=2) as thread_server:
            expected = [thread_server.submit_sync(d, timeout=60)
                        for d in docs]
        actual = [server.submit_sync(d, timeout=60) for d in docs]
        for ref, got in zip(expected, actual):
            assert got["status"] == "ok"
            assert got["output"] == ref["output"]
            assert got["runtime"] == ref["runtime"]
            assert got["platforms"] == ref["platforms"]

    def test_sticky_routing_same_plan_same_shard(self, server):
        doc = _doc(4200)
        jobs = []
        for __ in range(4):  # sequential: the home shard is always idle
            job = server.submit(doc)
            server.result(job.job_id, timeout=60)
            jobs.append(job)
        slots = {job.shard_slot for job in jobs}
        assert len(slots) == 1, f"sticky plan bounced across {slots}"

    def test_publish_broadcast_reaches_every_shard(self, server):
        # Publish a genuinely new parameter: republishing the params a
        # shard already holds is a version-stable no-op.
        params = RheemContext().cost_params_snapshot()
        params["pystreams.map"] = OperatorCostParams(alpha=1.5)
        assert server.publish_cost_params(params) == 3
        # The broadcast must not disturb serving.
        assert server.submit_sync(_doc(7), timeout=60)["status"] == "ok"

    def test_metrics_aggregate_across_processes(self, server):
        before = server.metrics_snapshot()
        docs = [_doc(i * 1000, marker="agg") for i in range(4)]
        for doc in docs:
            assert server.submit_sync(doc, timeout=60)["status"] == "ok"
        after = server.metrics_snapshot()
        assert set(after) == {"counters", "gauges", "histograms"}
        # Parent-side admission counters and shard-side optimizer
        # counters land in ONE merged view, in the single-registry shape.
        done = after["counters"]["server.jobs.done"] - \
            before["counters"].get("server.jobs.done", 0)
        assert done == len(docs)
        misses = after["counters"].get("plan_cache.misses", 0) - \
            before["counters"].get("plan_cache.misses", 0)
        assert misses >= len(docs)  # unique plans: one cold miss each
        run_hist = after["histograms"]["server.run_s"]
        assert run_hist["count"] >= len(docs)
        assert run_hist["min"] <= run_hist["mean"] <= run_hist["max"]

    def test_status_reports_shard_slot(self, server):
        job = server.submit(_doc(31))
        server.result(job.job_id, timeout=60)
        status = server.status(job.job_id)
        assert status["state"] == "done"
        assert status["shard"] in (0, 1, 2)


class TestShardFailure:
    def test_killed_worker_mid_job_fails_terminally_and_remaps(self):
        server = JobServer(workers=2, backend="process", queue_size=8,
                           respawn_shards=False, tracing=False)
        try:
            victim_doc = HANG_DOC
            fingerprint = document_fingerprint(victim_doc)
            hanging = server.submit(victim_doc)
            deadline = time.monotonic() + 10
            while hanging.state is not JobState.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            time.sleep(0.2)  # let the dispatch reach the shard pipe
            counters_before = server.metrics.snapshot()["counters"]

            # Find the shard actually executing the hung job and kill it.
            victim_slot = hanging.shard_slot
            assert victim_slot is not None
            victim = [s for s in server._shards.live_shards()
                      if s.slot == victim_slot][0]
            os.kill(victim.process.pid, signal.SIGKILL)

            # The job lands terminal failed with a structured response.
            response = server.result(hanging.job_id, timeout=30)
            assert hanging.state is JobState.FAILED
            assert response["status"] == "error"
            assert response["kind"] == "ShardFailure"
            assert response["shard"] == victim_slot

            # The slot is released and retired (no respawn here).
            occupancy = server.snapshot()
            assert occupancy["in_flight"] == 0
            slots = {s["slot"]: s for s in occupancy["shards"]}
            assert slots[victim_slot]["alive"] is False
            assert slots[victim_slot]["inflight"] == 0

            # Failure counters were published exactly once.
            counters = server.metrics.snapshot()["counters"]
            assert counters["server.jobs.failed"] == \
                counters_before.get("server.jobs.failed", 0) + 1
            assert counters["server.shards.died"] == 1

            # Sticky routing re-maps the dead shard's fingerprint onto a
            # survivor and the same plan now executes fine.
            job = server.submit(_doc(1))  # any doc keeps serving
            assert server.result(job.job_id, timeout=60)["status"] == "ok"
            remapped = server.submit({**victim_doc, "operators": [
                dict(op, expr="x") if op.get("kind") == "map" else op
                for op in victim_doc["operators"]]})
            # Same operator/sink shape minus the hang: new fingerprint,
            # but the *original* fingerprint's home must also resolve to
            # the surviving shard now.
            survivor = server._shards.pick(fingerprint)
            server._shards.release(survivor)
            assert survivor.slot != victim_slot
            assert server.result(remapped.job_id, timeout=60)[
                "status"] == "ok"
        finally:
            server.shutdown()

    def test_respawn_replaces_dead_shard(self):
        server = JobServer(workers=2, backend="process", queue_size=8,
                           tracing=False)  # respawn on (default)
        try:
            hanging = server.submit(HANG_DOC)
            deadline = time.monotonic() + 10
            while hanging.state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            time.sleep(0.2)
            victim_slot = hanging.shard_slot
            victim = [s for s in server._shards.live_shards()
                      if s.slot == victim_slot][0]
            os.kill(victim.process.pid, signal.SIGKILL)
            assert server.result(hanging.job_id, timeout=30)[
                "kind"] == "ShardFailure"
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                slots = {s["slot"]: s for s in server.snapshot()["shards"]}
                if slots[victim_slot]["alive"]:
                    break
                time.sleep(0.05)
            assert slots[victim_slot]["alive"] is True, \
                "dead shard was never respawned"
            # The replacement serves jobs (its caches warm on demand).
            assert server.submit_sync(_doc(5), timeout=60)["status"] == "ok"
            counters = server.metrics.snapshot()["counters"]
            assert counters["server.shards.died"] == 1
        finally:
            server.shutdown()

    def test_pool_raises_when_no_shards_left(self):
        pool = ShardPool(RheemContext, shards=1, respawn=False)
        try:
            shard = pool.live_shards()[0]
            os.kill(shard.process.pid, signal.SIGKILL)
            shard.process.join(timeout=10)
            with pytest.raises(ShardDied):
                shard.call("ping")
            pool.handle_failure(shard)
            with pytest.raises(ShardDied):
                pool.pick(document_fingerprint(_doc(0)))
        finally:
            pool.shutdown()


class TestFairShareDispatch:
    def test_priority_jobs_overtake_fifo(self):
        gate = threading.Event()
        gated = {
            "operators": [
                {"name": "src", "kind": "collection_source", "data": [1]},
                {"name": "hold", "kind": "map", "input": "src",
                 "expr": "(gate.wait(30), x)[1]"},
            ],
            "sink": {"name": "hold"},
        }
        server = JobServer(RheemContext(), env={"gate": gate}, workers=1,
                           queue_size=8)
        try:
            blocker = server.submit(gated)
            low = [server.submit(_doc(i), priority=0) for i in range(3)]
            high = server.submit(_doc(99), priority=5)
            gate.set()
            for job in [blocker, high, *low]:
                server.result(job.job_id, timeout=60)
            order = sorted(
                [high, *low], key=lambda j: j.started_at)
            assert order[0] is high, \
                "priority-5 job did not overtake the FIFO backlog"
        finally:
            server.shutdown()

    def test_tenant_quota_is_fair_share_not_rejection(self):
        gate = threading.Event()
        gated = {
            "operators": [
                {"name": "src", "kind": "collection_source", "data": [1]},
                {"name": "hold", "kind": "map", "input": "src",
                 "expr": "(gate.wait(30), x)[1]"},
            ],
            "sink": {"name": "hold"},
        }
        server = JobServer(RheemContext(), env={"gate": gate}, workers=2,
                           queue_size=16, tenant_quota=1)
        try:
            # Tenant A fills its quota and queues two more; tenant B
            # arrives later but must not starve behind A's backlog.
            a_jobs = [server.submit(gated, tenant="a") for __ in range(3)]
            deadline = time.monotonic() + 10
            while a_jobs[0].state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # Quota 1: only ONE of tenant A's jobs may run at once even
            # with a second worker idle.
            time.sleep(0.2)
            assert sum(j.state is JobState.RUNNING for j in a_jobs) == 1
            b_job = server.submit(gated, tenant="b")
            deadline = time.monotonic() + 10
            while b_job.state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # B overtook A's queued backlog; nothing was rejected.
            assert a_jobs[1].state is JobState.QUEUED
            gate.set()
            for job in [*a_jobs, b_job]:
                assert server.result(job.job_id, timeout=60)[
                    "status"] == "ok"
            assert server.snapshot()["tenants_running"] == {}
        finally:
            server.shutdown()


class TestBackpressure:
    def test_queue_full_carries_depth_and_retry_after(self):
        gate = threading.Event()
        gated = {
            "operators": [
                {"name": "src", "kind": "collection_source", "data": [1]},
                {"name": "hold", "kind": "map", "input": "src",
                 "expr": "(gate.wait(30), x)[1]"},
            ],
            "sink": {"name": "hold"},
        }
        server = JobServer(RheemContext(), env={"gate": gate}, workers=1,
                           queue_size=1)
        try:
            # Seed the service-time EWMA with one finished job.
            assert server.submit_sync(SLEEP_DOC, timeout=60)[
                "status"] == "ok"
            server.submit(gated)
            server.submit(gated)
            with pytest.raises(AdmissionError) as err:
                server.submit_sync(gated)
            response = err.value.response
            assert response["code"] == 429
            assert response["kind"] == "QueueFull"
            assert response["queue_depth"] + response["in_flight"] == 2
            # The hint derives from the measured EWMA: at least the
            # ~0.2 s the seeded job took, scaled by the backlog, and
            # never the un-seeded 1 s fallback exactly.
            assert response["retry_after_s"] >= 0.2 * 3 / 1 * 0.5
            # The body carries the estimate rounded to milliseconds.
            assert response["retry_after_s"] == pytest.approx(
                server._run_ewma * 3, abs=1e-3)
        finally:
            gate.set()
            server.shutdown()

    def test_retry_after_falls_back_before_first_completion(self):
        gate = threading.Event()
        gated = {
            "operators": [
                {"name": "src", "kind": "collection_source", "data": [1]},
                {"name": "hold", "kind": "map", "input": "src",
                 "expr": "(gate.wait(30), x)[1]"},
            ],
            "sink": {"name": "hold"},
        }
        server = JobServer(RheemContext(), env={"gate": gate}, workers=1,
                           queue_size=0)
        try:
            server.submit(gated)
            with pytest.raises(AdmissionError) as err:
                server.submit_sync(gated)
            assert err.value.response["retry_after_s"] == 1.0
        finally:
            gate.set()
            server.shutdown()

    def test_wsgi_429_sets_retry_after_header(self):
        import io

        from repro.server import make_wsgi_app

        gate = threading.Event()
        gated = {
            "operators": [
                {"name": "src", "kind": "collection_source", "data": [1]},
                {"name": "hold", "kind": "map", "input": "src",
                 "expr": "(gate.wait(30), x)[1]"},
            ],
            "sink": {"name": "hold"},
        }
        server = JobServer(RheemContext(), env={"gate": gate}, workers=1,
                           queue_size=0)
        app = make_wsgi_app(server)
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        try:
            server.submit(gated)
            body = json.dumps(gated).encode()
            environ = {
                "REQUEST_METHOD": "POST", "PATH_INFO": "/jobs",
                "CONTENT_LENGTH": str(len(body)),
                "wsgi.input": io.BytesIO(body),
            }
            payload = json.loads(b"".join(app(environ, start_response)))
            assert captured["status"].startswith("429")
            assert payload["kind"] == "QueueFull"
            assert "queue_depth" in payload and "retry_after_s" in payload
            header = int(captured["headers"]["Retry-After"])
            assert header >= 1
            assert header == max(1, round(payload["retry_after_s"]))
        finally:
            gate.set()
            server.shutdown()
