"""Figure 9(d)-(f): opportunistic cross-platform processing.

Re-enable all platform combinations and show that mixing platforms beats
every single platform: WordCount gains a little (driver-fetch trick), SGD
gains a lot (loop body off the big-data platform), CrocoPR picks the
"surprising" Flink+JGraph combination and stays flat as iterations grow.
"""

from conftest import run_once
from harness import Cell, print_series, run_forced, sim_extra_info
from tasks import build_crocopr, build_sgd, build_wordcount


class TestFig9d:
    def test_wordcount_with_mixing(self, benchmark):
        def scenario():
            rows = {}
            for pct in (50, 100, 200):
                rows[pct] = {
                    "Spark*": run_forced(lambda: build_wordcount(pct),
                                         {"sparklite"}),
                    "Flink*": run_forced(lambda: build_wordcount(pct),
                                         {"flinklite"}),
                    "Rheem": run_forced(lambda: build_wordcount(pct), None),
                }
            print_series("Fig 9(d) WordCount (opportunistic)", "dataset %",
                         rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        for pct, cells in rows.items():
            best_single = min(cells["Spark*"].seconds,
                              cells["Flink*"].seconds)
            # Mixing (collect via the in-process platform) never loses and
            # slightly beats the best pure engine.
            assert cells["Rheem"].seconds <= best_single


class TestFig9e:
    def test_sgd_batch_sweep(self, benchmark):
        def scenario():
            rows = {}
            for batch in (1, 100, 1000, 10000):
                build = lambda plats=None: build_sgd(
                    percent=100, iterations=100, batch=batch,
                    sample_method="random_jump" if plats is None
                    else "random")
                rows[batch] = {
                    "Spark*": run_forced(lambda: build({"sparklite"}),
                                         {"sparklite"}),
                    "Rheem": run_forced(lambda: build(), None),
                }
            print_series("Fig 9(e) SGD (opportunistic), 100 iterations",
                         "batch size", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        # Small batches: the mixed plan crushes pure Spark (paper: ~20x at
        # 1000 iterations; here 100 iterations, so >=4x).
        assert rows[1]["Spark*"].seconds > 4 * rows[1]["Rheem"].seconds
        # The gap narrows as batches grow (more real work per iteration).
        gap_small = rows[1]["Spark*"].seconds / rows[1]["Rheem"].seconds
        gap_large = rows[10000]["Spark*"].seconds / rows[10000]["Rheem"].seconds
        assert gap_large < gap_small


class TestFig9f:
    def test_crocopr_iteration_sweep(self, benchmark):
        def scenario():
            rows = {}
            for iters in (10, 100, 1000):
                rows[iters] = {
                    "Giraph*": run_forced(
                        lambda: build_crocopr(10, iters),
                        {"graphlite", "pystreams"}),
                    "Rheem": run_forced(lambda: build_crocopr(10, iters),
                                        None),
                }
            print_series("Fig 9(f) CrocoPR (opportunistic), 10% input",
                         "iterations", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        # Rheem beats the fastest single platform at every iteration count.
        for iters, cells in rows.items():
            assert cells["Rheem"].seconds < cells["Giraph*"].seconds
        # And it grows far slower with iterations (in-process PageRank vs
        # per-superstep synchronisation).
        rheem_growth = rows[1000]["Rheem"].seconds / rows[10]["Rheem"].seconds
        giraph_growth = (rows[1000]["Giraph*"].seconds
                         / rows[10]["Giraph*"].seconds)
        assert rheem_growth < giraph_growth
