"""Benchmark-suite configuration.

Each figure scenario is deterministic and already aggregates many runs
internally, so pytest-benchmark executes it once (pedantic mode) and the
paper-comparable simulated seconds ride along in ``extra_info``.
"""

import sys
from pathlib import Path

# Make the sibling helper modules (harness, tasks) importable when pytest
# is invoked from the repository root.
sys.path.insert(0, str(Path(__file__).parent))


def run_once(benchmark, fn):
    """Run a scenario exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
