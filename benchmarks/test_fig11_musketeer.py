"""Figure 11: Rheem vs the Musketeer-style baseline on CrocoPR.

The paper's claims: Rheem is one order of magnitude (up to 85x) faster,
and — crucially — its runtime stays (nearly) flat as iterations grow,
because the post-preparation PageRank runs in-process while Musketeer
recompiles and re-materializes per iteration.
"""

from conftest import run_once
from harness import Cell, print_series, run_forced, sim_extra_info
from repro.baselines import MusketeerRunner
from tasks import build_crocopr, crocopr_edge_lines


class TestFig11:
    def test_dataset_size_sweep(self, benchmark):
        def scenario():
            runner = MusketeerRunner()
            rows = {}
            for pct in (1, 50, 100):
                lines, sim_factor, bpe = crocopr_edge_lines(pct)
                mk = runner.crocopr(lines, sim_factor, bpe, iterations=10)
                rheem = run_forced(
                    lambda: build_crocopr(percent=pct, iterations=10), None)
                rows[f"{pct}%"] = {
                    "Musketeer*": Cell(mk.runtime),
                    "Rheem": Cell(rheem.seconds),
                }
            print_series("Fig 11 (left): CrocoPR, 10 iterations",
                         "dataset %", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        for cells in rows.values():
            assert cells["Rheem"].seconds * 5 < cells["Musketeer*"].seconds

    def test_iteration_sweep(self, benchmark):
        def scenario():
            runner = MusketeerRunner()
            rows = {}
            for iters in (1, 10, 50, 100):
                lines, sim_factor, bpe = crocopr_edge_lines(10)
                mk = runner.crocopr(lines, sim_factor, bpe, iterations=iters)
                rheem = run_forced(
                    lambda: build_crocopr(percent=10, iterations=iters), None)
                rows[iters] = {
                    "Musketeer*": Cell(mk.runtime),
                    "Rheem": Cell(rheem.seconds),
                }
            print_series("Fig 11 (right): CrocoPR at 10%", "iterations",
                         rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        # Order-of-magnitude gap that WIDENS with iterations (paper: up to
        # ~85x at 100 iterations).
        gap_100 = (rows[100]["Musketeer*"].seconds
                   / rows[100]["Rheem"].seconds)
        gap_10 = rows[10]["Musketeer*"].seconds / rows[10]["Rheem"].seconds
        assert gap_100 > 20
        assert gap_100 > gap_10
        # Rheem's growth over 1->100 iterations is modest; Musketeer's is
        # essentially linear in the iteration count.
        rheem_growth = rows[100]["Rheem"].seconds / rows[1]["Rheem"].seconds
        musketeer_growth = (rows[100]["Musketeer*"].seconds
                            / rows[1]["Musketeer*"].seconds)
        assert musketeer_growth > 5 * rheem_growth
