"""Figure 9(a)-(c): platform independence.

For each task and input size, run forced on each single platform and free;
the paper's claims: no single platform wins everywhere, the differences are
large, and Rheem always picks (nearly) the best platform.
"""

import pytest

from conftest import run_once
from harness import Cell, print_series, run_forced, sim_extra_info
from tasks import build_crocopr, build_sgd, build_wordcount

#: Rheem's free choice may be this factor worse than the best forced run
#: (cardinality estimates are intervals, not oracles).
SLACK = 1.25


def _sweep(build_for, points, systems):
    rows = {}
    for x in points:
        cells = {}
        for name, platforms in systems.items():
            cells[name] = run_forced(lambda: build_for(x), platforms)
        rows[x] = cells
    return rows


def _assert_rheem_near_best(rows):
    for x, cells in rows.items():
        candidates = [c.seconds for name, c in cells.items()
                      if name != "Rheem" and c.seconds is not None]
        rheem = cells["Rheem"].seconds
        assert rheem is not None
        assert rheem <= min(candidates) * SLACK, (x, cells)


class TestFig9a:
    def test_wordcount_sweep(self, benchmark):
        systems = {
            "JavaStreams*": {"pystreams"},
            "Spark*": {"sparklite"},
            "Flink*": {"flinklite"},
            "Rheem": None,
        }

        def scenario():
            rows = _sweep(lambda pct: build_wordcount(pct),
                          (1, 10, 50, 100), systems)
            print_series("Fig 9(a) WordCount (platform independence)",
                         "dataset %", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        _assert_rheem_near_best(rows)
        # Single-threaded JavaStreams degrades hard at full size...
        assert rows[100]["JavaStreams*"].seconds > \
            5 * rows[100]["Flink*"].seconds
        # ...but wins (or ties) at 1% thanks to zero start-up.
        assert rows[1]["JavaStreams*"].seconds < \
            rows[1]["Spark*"].seconds * 1.5


class TestFig9b:
    def test_sgd_sweep(self, benchmark):
        systems = {
            "JavaStreams*": {"pystreams"},
            "Spark*": {"sparklite"},
            "Flink*": {"flinklite"},
            "Rheem": None,
        }

        def scenario():
            rows = _sweep(
                lambda pct: build_sgd(percent=pct, iterations=100),
                (1, 25, 100), systems)
            print_series("Fig 9(b) SGD (platform independence)",
                         "dataset %", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        _assert_rheem_near_best(rows)
        # Big-data platform overheads dominate on the small slices.
        assert rows[1]["JavaStreams*"].seconds < rows[1]["Spark*"].seconds


class TestFig9c:
    def test_crocopr_sweep(self, benchmark):
        systems = {
            "JGraph*": {"pystreams", "jgraph"},
            "Giraph*": {"graphlite", "pystreams"},
            "Spark*": {"sparklite"},
            "Flink*": {"flinklite"},
            "Rheem": None,
        }

        def scenario():
            def build(pct, platforms):
                pin = "jgraph" if platforms == {"pystreams", "jgraph"} else None
                return build_crocopr(percent=pct, iterations=10,
                                     pin_pagerank=pin)

            rows = {}
            for pct in (1, 10, 25, 100):
                rows[pct] = {
                    name: run_forced(lambda: build(pct, platforms), platforms)
                    for name, platforms in systems.items()
                }
            print_series("Fig 9(c) CrocoPR (platform independence)",
                         "dataset %", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        _assert_rheem_near_best(rows)
        # JGraph cannot process the large slices (paper: killed/OOM)...
        assert rows[100]["JGraph*"].note == "OOM"
        # ...but is the platform to beat on the small ones.
        assert rows[1]["JGraph*"].seconds < rows[1]["Giraph*"].seconds
        # At full size the vertex-centric platform wins among baselines.
        assert rows[100]["Giraph*"].seconds < rows[100]["Spark*"].seconds
