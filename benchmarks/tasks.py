"""The three canonical tasks of the paper's Table 1, as reusable builders.

| Task      | Description                  | Dataset (simulated)           |
|-----------|------------------------------|-------------------------------|
| WordCount | count distinct words         | Wikipedia abstracts (3 GB)    |
| SGD       | stochastic gradient descent  | HIGGS (7.4 GB)                |
| CrocoPR   | cross-community pagerank     | DBpedia pagelinks (24 GB)     |
"""

from __future__ import annotations

from repro import RheemContext
from repro.apps import ML4all, sgd_hinge
from repro.apps.xdb import crocopr_quanta
from repro.workloads import write_abstracts, write_pagelinks, write_points
from repro.workloads.graphs import BYTES_PER_EDGE, FULL_SIM_EDGES
from repro.workloads.points import DATASETS
from repro.workloads.text import zipf_lines


def wordcount_quanta(ctx: RheemContext, path: str):
    """WordCount: 4 Rheem operators (source, flatmap, map, reduce-by).

    The split UDF carries its expansion selectivity (~9 words/line), as the
    paper lets applications do; without it the optimizer underestimates the
    word stream and can mis-pick near the platform crossover.
    """
    from repro.core.udf import Udf

    split = Udf(lambda line: line.split(), selectivity=9.0, name="split")
    return (ctx.read_text_file(path)
            .flat_map(split, name="split-words", bytes_per_record=10)
            .map(lambda w: (w, 1), name="pair", bytes_per_record=14)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1])))


def build_wordcount(percent: float, seed: int = 17):
    """Fresh context + WordCount over ``percent``% of the 3 GB corpus."""
    ctx = RheemContext()
    write_abstracts(ctx, "hdfs://bench/abstracts.txt", percent, seed)
    return wordcount_quanta(ctx, "hdfs://bench/abstracts.txt")


def build_sgd(percent: float = 100.0, iterations: int = 1000,
              batch: int = 10, dataset: str = "higgs",
              sample_method: str = "random_jump"):
    """Fresh context + the SGD training plan (9 Rheem operators)."""
    ctx = RheemContext()
    spec = write_points(ctx, "hdfs://bench/points.csv", dataset, percent)
    return ML4all(ctx).training_quanta(
        "hdfs://bench/points.csv", sgd_hinge(spec.dimensions),
        iterations=iterations, sample_size=batch,
        sample_method=sample_method)


#: Fraction of links the two community datasets share.  The paper observes
#: that "after the preparation phase ... the input dataset for the PageRank
#: operation on JGraph is a couple of megabytes only" — the intersection is
#: much smaller than either input.
CROCOPR_OVERLAP = 0.25


def build_crocopr(percent: float = 10.0, iterations: int = 10,
                  pin_pagerank: str | None = None):
    """Fresh context + CrocoPR over two overlapping pagelinks slices.

    ``pin_pagerank`` forces the PageRank operator onto one platform (used
    by the single-platform baseline bars; overriding the optimizer's memory
    feasibility check, exactly like the paper's killed JGraph runs).
    """
    from repro.workloads.graphs import ACTUAL_EDGES, ACTUAL_VERTICES, \
        power_law_edges

    ctx = RheemContext()
    edges_a = power_law_edges(ACTUAL_EDGES, ACTUAL_VERTICES, seed=31)
    shared = int(len(edges_a) * CROCOPR_OVERLAP)
    edges_b = edges_a[:shared] + power_law_edges(
        ACTUAL_EDGES - shared, ACTUAL_VERTICES, seed=32)
    sim_factor = FULL_SIM_EDGES * (percent / 100.0) / ACTUAL_EDGES
    for path, edges in (("hdfs://bench/linksA.txt", edges_a),
                        ("hdfs://bench/linksB.txt", edges_b)):
        ctx.vfs.write(path, [f"{a} {b}" for a, b in edges],
                      sim_factor=sim_factor, bytes_per_record=BYTES_PER_EDGE)
    dq = crocopr_quanta(ctx, "hdfs://bench/linksA.txt",
                        "hdfs://bench/linksB.txt", iterations)
    if pin_pagerank is not None:
        dq.op.inputs[0].op.with_target_platform(pin_pagerank)
    return dq


def crocopr_edge_lines(percent: float, seed: int = 31):
    """Raw edge lines + sim factor for external runners (Musketeer)."""
    from repro.workloads.graphs import ACTUAL_EDGES, ACTUAL_VERTICES, \
        power_law_edges

    edges = power_law_edges(ACTUAL_EDGES, ACTUAL_VERTICES, seed=seed)
    lines = [f"{a} {b}" for a, b in edges]
    sim_factor = FULL_SIM_EDGES * (percent / 100.0) / len(lines)
    return lines, sim_factor, BYTES_PER_EDGE


#: Table 1 metadata (paper's operator counts; ours are measured from the
#: actual plans by the Table-1 benchmark and differ where our operator
#: vocabulary is more compact, e.g. CrocoPR's 27-operator plan collapses
#: into intersect/distinct/pagerank here).
TABLE1 = {
    "WordCount": {"paper_operators": 4,
                  "dataset": "Wikipedia abstracts (3GB)"},
    "SGD": {"paper_operators": 9, "dataset": "HIGGS (7.4GB)"},
    "CrocoPR": {"paper_operators": 27,
                "dataset": "DBpedia pagelinks (24GB)"},
}
