"""Table 1: the benchmark tasks, their operator counts and datasets."""

from conftest import run_once
from harness import Cell, print_series
from tasks import TABLE1, build_crocopr, build_sgd, build_wordcount


def test_table1_task_inventory(benchmark):
    def scenario():
        plans = {
            "WordCount": build_wordcount(1).to_plan(),
            "SGD": build_sgd(percent=1, iterations=2).to_plan(),
            "CrocoPR": build_crocopr(percent=1, iterations=2).to_plan(),
        }
        rows = {}
        for task, plan in plans.items():
            measured = plan.operator_count()
            rows[task] = {
                "paper ops": Cell(TABLE1[task]["paper_operators"]),
                "our ops": Cell(measured),
            }
            assert measured >= 4
        print_series("Table 1: tasks and datasets", "task", rows)
        for task, meta in TABLE1.items():
            print(f"  {task}: {meta['dataset']}")
        return rows

    rows = run_once(benchmark, scenario)
    assert set(rows) == {"WordCount", "SGD", "CrocoPR"}
