"""Ablations of the design choices DESIGN.md calls out.

A. Lossless pruning: same optimum, far smaller enumeration.
B. Channel conversion graph: adding a platform needs O(1) conversions, not
   one per existing platform — the graph composes the rest.
C. Cost learning: plans picked with a badly mis-calibrated cost model vs
   with parameters re-fitted from execution logs.
"""

import pytest

from conftest import run_once
from harness import Cell, fresh_context, print_series, sim_extra_info
from tasks import build_crocopr, build_wordcount, wordcount_quanta


class TestAblationPruning:
    def test_pruning_is_lossless_and_effective(self, benchmark):
        def scenario():
            ctx = fresh_context()
            from repro.workloads import write_abstracts
            write_abstracts(ctx, "hdfs://ab/wc.txt", 10)
            plan = (wordcount_quanta(ctx, "hdfs://ab/wc.txt")
                    .sort(key=lambda t: -t[1])
                    .distinct()
                    .to_plan())
            pruned = ctx.optimizer()
            best_pruned, __ = pruned.pick_best(plan)
            unpruned = ctx.optimizer()
            unpruned.prune = False
            best_full, __ = unpruned.pick_best(plan)
            rows = {"WordCount+sort+distinct": {
                "pruned: partial plans": Cell(pruned.last_enumeration_size),
                "exhaustive: partial plans": Cell(
                    unpruned.last_enumeration_size),
                "pruned cost": Cell(best_pruned.cost.geometric_mean),
                "exhaustive cost": Cell(best_full.cost.geometric_mean),
            }}
            print_series("Ablation A: lossless pruning", "plan", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        cells = rows["WordCount+sort+distinct"]
        assert cells["pruned cost"].seconds == pytest.approx(
            cells["exhaustive cost"].seconds)
        assert cells["pruned: partial plans"].seconds * 3 < \
            cells["exhaustive: partial plans"].seconds


class TestAblationChannelGraph:
    def test_new_platform_needs_constant_conversions(self, benchmark):
        """The paper's O(n) vs O(n*m) extensibility argument, measured."""

        def scenario():
            from repro.core.channels import (
                Channel,
                ChannelDescriptor,
                Conversion,
            )
            from repro.platforms.pystreams.channels import PY_COLLECTION

            ctx = fresh_context()
            data_channels = [d for d in ctx.graph.descriptors()
                             if "broadcast" not in d.name]
            # Plug a brand-new platform with exactly TWO conversions
            # (to/from one existing channel)...
            new_desc = ChannelDescriptor("arraydb.array", "arraydb", True)
            identity = lambda ch, __ctx: ch.with_payload(
                list(ch.payload), new_desc, ch.actual_count)
            back = lambda ch, __ctx: ch.with_payload(
                list(ch.payload), PY_COLLECTION, ch.actual_count)
            ctx.graph.register_conversion(Conversion(
                PY_COLLECTION, new_desc, identity, mb_per_s=200.0,
                overhead_s=0.02, name="arraydb-import"))
            ctx.graph.register_conversion(Conversion(
                new_desc, PY_COLLECTION, back, mb_per_s=200.0,
                overhead_s=0.02, name="arraydb-export"))
            # ...and verify EVERY existing data channel can now reach it and
            # be reached from it through the conversion graph.
            reachable_in = reachable_out = 0
            for desc in data_channels:
                ctx.graph.cheapest_path(desc, new_desc, 1000, 100)
                reachable_in += 1
                ctx.graph.cheapest_path(new_desc, desc, 1000, 100)
                reachable_out += 1
            rows = {"new arraydb platform": {
                "conversions written": Cell(2),
                "channels reachable": Cell(reachable_in + reachable_out),
                "direct-only would need": Cell(2 * len(data_channels)),
            }}
            print_series("Ablation B: channel conversion graph", "event",
                         rows)
            return rows, len(data_channels)

        (rows, n) = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        cells = rows["new arraydb platform"]
        assert cells["channels reachable"].seconds == 2 * n
        assert cells["conversions written"].seconds == 2


class TestAblationCostLearner:
    def test_learned_model_beats_a_miscalibrated_one(self, benchmark):
        """Plan quality: runtimes of the plans chosen under (i) a cost model
        whose pystreams costs are wrong by 100x, (ii) the same model after
        re-fitting from generated execution logs."""

        def scenario():
            from repro.core.cost import OperatorCostParams
            from repro.learn import GeneratorConfig, GeneticCostLearner, \
                LogGenerator
            from repro.simulation import VirtualCluster

            def run_with(params):
                ctx = fresh_context(cost_params=params)
                from repro.workloads import write_abstracts
                write_abstracts(ctx, "hdfs://cl/wc.txt", 25)
                return wordcount_quanta(ctx, "hdfs://cl/wc.txt").execute()

            # Mis-calibration: the single-node platform looks 100x cheaper
            # than it is -> the optimizer funnels big data onto it.
            broken = {f"pystreams.{kind}": OperatorCostParams(0.01, 0.0, 0.0)
                      for kind in ("map", "flatmap", "filter", "reduceby",
                                   "source", "sink", "distinct", "sort")}
            bad = run_with(broken)

            config = GeneratorConfig(sizes=(200,), sim_factors=(20_000.0,),
                                     selectivities=(0.5,), udf_weights=(1.0,))
            records = LogGenerator(config).generate()
            learner = GeneticCostLearner(VirtualCluster(), records, seed=5)
            fit = learner.fit(population_size=30, generations=30)
            learned = run_with(fit.params)

            rows = {"WordCount 25%": {
                "mis-calibrated model": Cell(bad.runtime),
                "learned model": Cell(learned.runtime),
            }}
            print_series("Ablation C: cost model learning", "task", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        cells = rows["WordCount 25%"]
        assert cells["learned model"].seconds < \
            cells["mis-calibrated model"].seconds / 2
