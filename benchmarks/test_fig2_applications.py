"""Figure 2: the four cross-platform use cases, one panel per test.

(a) platform independence — BigDansing vs NADEEF / SparkSQL;
(b) opportunistic      — ML4all vs MLlib* / SystemML*;
(c) mandatory          — xDB cross-community PageRank from Postgres vs ideal;
(d) polystore          — Data Civilizer's TPC-H Q5 across three stores.
"""

import math

from conftest import run_once
from harness import Cell, fresh_context, print_series, sim_extra_info
from repro.apps import (
    BigDansing,
    ML4all,
    crocopr,
    run_all_into_pgres,
    run_all_on_spark,
    run_polystore,
    sgd_hinge,
    tax_rule,
)
from repro.apps.xdb import crocopr_from_tables
from repro.baselines import (
    mllib_sgd,
    nadeef_detect,
    sparksql_detect,
    systemml_sgd,
)
from repro.workloads import write_community, write_points, write_tax
from repro.workloads.graphs import BYTES_PER_EDGE, community_edges
from repro.workloads.points import DATASETS
from repro.workloads.tax import parse_tax


class TestFig2aCleaning:
    ROWS = (100_000, 200_000, 1_000_000, 2_000_000)

    def _tax(self, sim_rows):
        ctx = fresh_context()
        write_tax(ctx, "hdfs://tax", 400, sim_rows, violations=5)
        data = (ctx.read_text_file("hdfs://tax")
                .map(parse_tax, name="parse-tax", bytes_per_record=60))
        records = [parse_tax(l) for l in ctx.vfs.read("hdfs://tax").records]
        return ctx, data, records

    def test_cleaning_vs_baselines(self, benchmark):
        def scenario():
            rows = {}
            from repro.simulation.cluster import SimulatedOutOfMemory
            for n in self.ROWS:
                ctx, data, records = self._tax(n)
                rheem = BigDansing(ctx).detect(data, tax_rule())
                nd = nadeef_detect(records, n, tax_rule())
                ctx2, data2, __ = self._tax(n)
                try:
                    ss = sparksql_detect(ctx2, data2, tax_rule(), n)
                    spark_cell = (Cell(None, "stopped") if ss.killed
                                  else Cell(ss.runtime))
                except SimulatedOutOfMemory:
                    # Materializing ~n^2 candidate pairs breaks the cluster:
                    # the paper's crossed-out SparkSQL bars.
                    spark_cell = Cell(None, "OOM")
                rows[n] = {
                    "DC@Rheem": Cell(rheem.runtime,
                                     "+".join(sorted(rheem.platforms))),
                    "NADEEF*": Cell(None, "stopped") if nd.killed
                    else Cell(nd.runtime),
                    "SparkSQL*": spark_cell,
                }
            print_series("Fig 2(a) data cleaning (Tax denial constraint)",
                         "rows", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        # >= 2 orders of magnitude vs both baselines at 100k.
        r = rows[100_000]
        assert r["NADEEF*"].seconds > 100 * r["DC@Rheem"].seconds
        assert r["SparkSQL*"].seconds > 100 * r["DC@Rheem"].seconds
        # Baselines die on the big sizes; Rheem scales through them.
        assert rows[2_000_000]["NADEEF*"].note == "stopped"
        assert rows[1_000_000]["SparkSQL*"].note in ("OOM", "stopped")
        assert rows[2_000_000]["DC@Rheem"].seconds is not None


class TestFig2bSgdSystems:
    def test_sgd_across_datasets(self, benchmark):
        def scenario():
            rows = {}
            for name in ("rcv1", "higgs", "svm"):
                dims = DATASETS[name].dimensions
                ctx = fresh_context()
                write_points(ctx, "hdfs://p", name, percent=100)
                rheem = ML4all(ctx).train("hdfs://p", sgd_hinge(dims),
                                          iterations=100)
                ctx2 = fresh_context()
                write_points(ctx2, "hdfs://p", name, percent=100)
                ml = mllib_sgd(ctx2, "hdfs://p", sgd_hinge(dims),
                               iterations=100)
                ctx3 = fresh_context()
                write_points(ctx3, "hdfs://p", name, percent=100)
                sy = systemml_sgd(ctx3, "hdfs://p", sgd_hinge(dims),
                                  iterations=100)
                rows[name] = {
                    "ML@Rheem": Cell(rheem.runtime),
                    "MLlib*": Cell(ml.runtime),
                    "SystemML*": Cell(None, "OOM") if sy.oom
                    else Cell(sy.runtime),
                }
            print_series("Fig 2(b) SGD across datasets", "dataset", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        for name in ("rcv1", "higgs"):
            r = rows[name]
            assert r["ML@Rheem"].seconds < r["MLlib*"].seconds
            assert r["MLlib*"].seconds < r["SystemML*"].seconds
        assert rows["svm"]["SystemML*"].note == "OOM"


class TestFig2cMandatory:
    SIZES_MB = (200, 500, 1000)

    def test_xdb_from_postgres_vs_ideal(self, benchmark):
        def scenario():
            rows = {}
            for mb in self.SIZES_MB:
                # Rheem: the link tables live in Postgres; PageRank cannot
                # run there, so data MUST move.
                ctx = fresh_context()
                for i, name in ((1, "community_a"), (2, "community_b")):
                    edges = community_edges(i)
                    sim_rows = mb * 1e6 / BYTES_PER_EDGE
                    ctx.pgres.create_table(
                        name, ["src", "dst"],
                        [{"src": a, "dst": b} for a, b in edges],
                        sim_factor=sim_rows / len(edges),
                        bytes_per_row=BYTES_PER_EDGE)
                res = crocopr_from_tables(ctx, "community_a", "community_b")
                # Ideal: the same data is already on HDFS.
                ctx2 = fresh_context()
                write_community(ctx2, "hdfs://c1", 1, sim_mb=mb)
                write_community(ctx2, "hdfs://c2", 2, sim_mb=mb)
                ideal = crocopr(ctx2, "hdfs://c1", "hdfs://c2")
                rows[f"{mb}MB"] = {
                    "xDB@Rheem": Cell(res.runtime),
                    "ideal (HDFS)": Cell(ideal.runtime),
                }
            print_series("Fig 2(c) mandatory cross-platform "
                         "(cross-community PageRank)", "input size", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        for mb in self.SIZES_MB:
            r = rows[f"{mb}MB"]
            # Rheem stays close to the ideal despite having to migrate the
            # data out of Postgres first (paper: "similar performance").
            assert r["xDB@Rheem"].seconds < 3.0 * r["ideal (HDFS)"].seconds


class TestFig2dPolystore:
    SCALE_FACTORS = (1, 10, 100)

    def test_q5_across_three_stores(self, benchmark):
        def scenario():
            rows = {}
            for sf in self.SCALE_FACTORS:
                direct = run_polystore(fresh_context(), sf)
                into_pg = run_all_into_pgres(fresh_context(), sf)
                on_spark = run_all_on_spark(fresh_context(), sf)
                rows[f"sf{sf}"] = {
                    "DataCiv@Rheem": Cell(direct.runtime),
                    "Postgres* (load+query)": Cell(into_pg.runtime),
                    "Spark* (move+query)": Cell(on_spark.runtime),
                }
                assert sorted(direct.result) == sorted(into_pg.result) \
                    == sorted(on_spark.result)
            print_series("Fig 2(d) polystore (TPC-H Q5 over 3 stores)",
                         "scale factor", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        for sf in self.SCALE_FACTORS:
            r = rows[f"sf{sf}"]
            # Rheem beats loading the lake into Postgres by a wide margin...
            assert r["Postgres* (load+query)"].seconds > \
                2 * r["DataCiv@Rheem"].seconds
            # ...and at least matches the manual move-to-HDFS+Spark practice.
            assert r["DataCiv@Rheem"].seconds <= \
                1.05 * r["Spark* (move+query)"].seconds
