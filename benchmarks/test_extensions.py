"""Extension experiments beyond the paper's figures.

1. The graph-platform spectrum: JGraph vs GraphChi vs Giraph across sizes —
   the out-of-core platform fills the gap where JGraph dies but a cluster
   is overkill.
2. Cross-platform fault tolerance: runtime overhead vs injected failure
   rate (the paper's future-work item, quantified).
3. Runtime vs money: the same task optimized for each objective.
"""

from conftest import run_once
from harness import Cell, fresh_context, print_series, run_forced, \
    sim_extra_info
from repro.core import FaultInjector, monetary, price_of
from repro.workloads import write_abstracts
from tasks import build_crocopr, build_wordcount


class TestGraphPlatformSpectrum:
    def test_graphchi_fills_the_memory_gap(self, benchmark):
        def scenario():
            rows = {}
            for pct in (1, 25, 100):
                rows[pct] = {
                    "JGraph*": run_forced(
                        lambda: build_crocopr(pct, 10, pin_pagerank="jgraph"),
                        {"pystreams", "jgraph"}),
                    "GraphChi*": run_forced(
                        lambda: build_crocopr(pct, 10,
                                              pin_pagerank="graphchi"),
                        {"flinklite", "pystreams", "graphchi"}),
                    "Giraph*": run_forced(
                        lambda: build_crocopr(pct, 10),
                        {"graphlite", "pystreams"}),
                }
            print_series("Extension: graph platform spectrum (CrocoPR)",
                         "dataset %", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        # JGraph dies at 100%; the out-of-core platform survives on ONE
        # machine, slower than the 10-node cluster but alive.
        assert rows[100]["JGraph*"].note == "OOM"
        assert rows[100]["GraphChi*"].seconds is not None


class TestFaultToleranceOverhead:
    def test_overhead_grows_with_failure_rate(self, benchmark):
        def scenario():
            rows = {}
            baseline = build_wordcount(25).execute()
            rows["p=0.0"] = {"runtime": Cell(baseline.runtime),
                             "crashes": Cell(0)}
            for probability in (0.2, 0.4):
                injector = FaultInjector(probability=probability, seed=1)
                result = build_wordcount(25).execute(
                    fault_injector=injector, max_stage_retries=30)
                rows[f"p={probability}"] = {
                    "runtime": Cell(result.runtime),
                    "crashes": Cell(injector.injected),
                }
                assert sorted(result.output) == sorted(baseline.output)
            print_series("Extension: fault-tolerance overhead (WordCount 25%)",
                         "failure rate", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        assert rows["p=0.4"]["runtime"].seconds >= \
            rows["p=0.0"]["runtime"].seconds


class TestRuntimeVsMoney:
    def test_objectives_trace_a_tradeoff(self, benchmark):
        def scenario():
            rows = {}
            for pct in (5, 50):
                ctx = fresh_context()
                write_abstracts(ctx, "hdfs://obj/wc.txt", pct)
                from tasks import wordcount_quanta
                fast = wordcount_quanta(ctx, "hdfs://obj/wc.txt").execute()
                ctx2 = fresh_context()
                write_abstracts(ctx2, "hdfs://obj/wc.txt", pct)
                cheap = wordcount_quanta(ctx2, "hdfs://obj/wc.txt").execute(
                    objective=monetary())
                rows[f"{pct}%"] = {
                    "runtime-opt (s)": Cell(fast.runtime),
                    "runtime-opt ($)": Cell(price_of(fast),
                                            f"${price_of(fast):.4f}"),
                    "money-opt (s)": Cell(cheap.runtime),
                    "money-opt ($)": Cell(price_of(cheap),
                                          f"${price_of(cheap):.4f}"),
                }
            print_series("Extension: runtime vs monetary optimization",
                         "input", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        for cells in rows.values():
            assert cells["money-opt ($)"].seconds <= \
                cells["runtime-opt ($)"].seconds + 1e-9
            assert cells["runtime-opt (s)"].seconds <= \
                cells["money-opt (s)"].seconds + 1e-9
