"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark module reproduces one table/figure of the paper: it runs
the corresponding workload on the simulated cluster, prints the paper-style
series (simulated seconds per system and sweep point) and asserts the
*shape* the paper reports — who wins, rough factors, where crossovers and
failures fall.  Wall-clock time of the whole scenario is measured by
pytest-benchmark; the simulated seconds are attached as ``extra_info``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import RheemContext
from repro.core.optimizer import OptimizationError
from repro.simulation.cluster import SimulatedOutOfMemory

#: Friendly display names for the simulated platforms.
DISPLAY = {
    "pystreams": "JavaStreams*",
    "sparklite": "Spark*",
    "flinklite": "Flink*",
    "pgres": "Postgres*",
    "graphlite": "Giraph*",
    "jgraph": "JGraph*",
}


@dataclass
class Cell:
    """One measurement: simulated seconds or a failure marker."""

    seconds: float | None
    note: str = ""

    def __str__(self) -> str:
        if self.note and self.seconds is not None:
            return self.note  # custom formatting (e.g. dollar amounts)
        if self.seconds is None:
            return self.note or "-"
        return f"{self.seconds:,.1f}"


def run_forced(build, platforms: set[str] | None) -> Cell:
    """Run a freshly built task, optionally pinned to a platform set.

    ``build`` must create a new context + plan each call (operator objects
    are single-use).  OOM and infeasible pins become marker cells, like the
    crosses and stars in the paper's figures.
    """
    try:
        dq_or_result = build()
        if hasattr(dq_or_result, "execute"):
            kwargs = {}
            if platforms is not None:
                kwargs["allowed_platforms"] = set(platforms) | {"driver"}
            result = dq_or_result.execute(**kwargs)
        else:
            result = dq_or_result
        return Cell(result.runtime)
    except SimulatedOutOfMemory:
        return Cell(None, "OOM")
    except OptimizationError:
        return Cell(None, "n/a")


def print_series(title: str, x_label: str,
                 rows: dict[str, dict[str, Cell]]) -> None:
    """Print a paper-style results table: one line per sweep point."""
    systems = sorted({s for cells in rows.values() for s in cells})
    width = max(12, *(len(s) + 2 for s in systems))
    print(f"\n=== {title} ===")
    print(f"{x_label:>14} | " + " | ".join(f"{s:>{width}}" for s in systems))
    for x, cells in rows.items():
        line = " | ".join(f"{str(cells.get(s, Cell(None))):>{width}}"
                          for s in systems)
        print(f"{str(x):>14} | {line}")


def sim_extra_info(benchmark, rows: dict[str, dict[str, Cell]]) -> None:
    """Attach the simulated measurements to the pytest-benchmark record."""
    benchmark.extra_info["simulated_seconds"] = {
        str(x): {s: (c.seconds if c.seconds is not None else c.note)
                 for s, c in cells.items()}
        for x, cells in rows.items()
    }


def fresh_context(**kwargs) -> RheemContext:
    return RheemContext(**kwargs)
