"""Figure 10: (a) the hidden-opportunity Join, (b) progressive
optimization, (c) exploratory-mode (data exploration) overhead."""

from conftest import run_once
from harness import Cell, fresh_context, print_series, sim_extra_info
from repro.core.executor import Sniffer
from repro.core.udf import Udf
from repro.workloads import TpchLite
from tasks import build_wordcount, wordcount_quanta


def _join_task(ctx, sf):
    """The paper's TPC-H Q5 subquery: SUPPLIER x CUSTOMER (both resident in
    Postgres) joined and aggregated on nationkey."""
    TpchLite(sf).place_for_q5(ctx)
    n_customer = 150_000 * sf
    suppliers = ctx.read_table("supplier", projection=["suppkey", "nationkey"])
    customers = ctx.read_table("customer", projection=["custkey", "nationkey"])
    joined = suppliers.join(customers, lambda s: s["nationkey"],
                            lambda c: c["nationkey"],
                            selectivity=1.0 / 25, sim_mode="product")
    return (joined.map(lambda p: (p[0]["nationkey"], 1), bytes_per_record=16)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1]),
                           sim_groups=25))


class TestFig10aJoin:
    def test_join_vs_pure_postgres(self, benchmark):
        def scenario():
            rows = {}
            for sf in (1, 10):
                free = _join_task(fresh_context(), sf).execute()
                forced = _join_task(fresh_context(), sf).execute(
                    allowed_platforms={"pgres", "driver"})
                rows[f"sf{sf}"] = {
                    "Rheem": Cell(free.runtime,
                                  "+".join(sorted(free.platforms))),
                    "Postgres*": Cell(forced.runtime),
                }
                assert sorted(free.output) == sorted(forced.output)
            print_series("Fig 10(a) Join (data resident in Postgres)",
                         "scale factor", rows)
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        # The hidden opportunity: even though the data lives in Postgres,
        # shipping the (projected) tuples to a parallel engine wins.
        assert rows["sf10"]["Rheem"].seconds < \
            rows["sf10"]["Postgres*"].seconds / 1.5
        assert rows["sf1"]["Rheem"].seconds <= rows["sf1"]["Postgres*"].seconds


def _po_plan(ctx, hint):
    """Join-after-misestimated-filter (the Figure 10(b) setup)."""
    rows = [f"item{i},{i % 1000}" for i in range(4000)]
    ctx.vfs.write("hdfs://po/events.csv", rows, sim_factor=10_000.0,
                  bytes_per_record=100.0)
    lookup = ctx.load_collection([(k, f"cat{k % 7}") for k in range(1000)],
                                 bytes_per_record=20)
    hinted = Udf(lambda t: t[1] >= 1, selectivity=hint, name="name-filter")
    events = (ctx.read_text_file("hdfs://po/events.csv")
              .map(lambda l: (l.split(",")[0], int(l.split(",")[1])),
                   name="parse")
              .filter(hinted))
    joined = events.join(lookup, lambda e: e[1], lambda kv: kv[0],
                         selectivity=1.0 / 1000)
    return (joined.map(lambda p: (p[1][1], 1), bytes_per_record=12)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1]))
            .to_plan())


class TestFig10bProgressive:
    def test_progressive_reoptimization(self, benchmark):
        def scenario():
            ctx_off = fresh_context()
            off = ctx_off.execute(_po_plan(ctx_off, hint=0.0001))
            ctx_on = fresh_context()
            report = ctx_on.execute_progressive(
                _po_plan(ctx_on, hint=0.0001), tolerance=2.0)
            rows = {"misestimated filter": {
                "PO off": Cell(off.runtime),
                "PO on": Cell(report.result.runtime,
                              f"{report.replans} replan(s)"),
            }}
            print_series("Fig 10(b) progressive optimization", "scenario",
                         rows)
            assert sorted(off.output) == sorted(report.result.output)
            return rows, report.replans

        (rows, replans) = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        cells = rows["misestimated filter"]
        assert replans >= 1
        # Paper: ~4x; anything >= 2x demonstrates the mechanism.
        assert cells["PO off"].seconds > 2 * cells["PO on"].seconds


class TestFig10cExploration:
    def test_sniffer_overhead(self, benchmark):
        def scenario():
            plain = build_wordcount(50).execute()
            dq = build_wordcount(50)
            # Tap the word stream right before the reduce, as the paper's
            # modified WordCount does.
            flatmap_op = dq.op.inputs[0].op.inputs[0].op
            seen = []
            sniffed = dq.execute(sniffers=[Sniffer(flatmap_op.id,
                                                   seen.append)])
            rows = {"WordCount 50%": {
                "DE off": Cell(plain.runtime),
                "DE on": Cell(sniffed.runtime),
            }}
            print_series("Fig 10(c) exploratory mode", "scenario", rows)
            assert seen, "the sniffer callback must observe data"
            return rows

        rows = run_once(benchmark, scenario)
        sim_extra_info(benchmark, rows)
        cells = rows["WordCount 50%"]
        overhead = cells["DE on"].seconds / cells["DE off"].seconds - 1.0
        # Paper: ~36% overhead; assert it is in a sane low band.
        assert 0.0 < overhead < 0.8
