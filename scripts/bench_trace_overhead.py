#!/usr/bin/env python
"""Measure the wall-clock overhead of the tracing/metrics layer.

Runs the TPC-H Q5 polystore workload (the paper's data-civilizer style
cross-platform query) with tracing disabled and enabled, and writes the
medians to ``BENCH_trace_overhead.json``.  The acceptance bar for the
subsystem is < 5% overhead: spans wrap every optimizer phase and every
stage attempt, so the driver-side cost must stay negligible next to the
actual optimization + execution work.

Usage::

    PYTHONPATH=src python scripts/bench_trace_overhead.py [--sf 0.05]
        [--repeats 7] [--out BENCH_trace_overhead.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.apps.dataciv import run_polystore  # noqa: E402


def _run_once(sf: float, traced: bool) -> float:
    ctx = RheemContext()
    if traced:
        ctx.enable_tracing()
    start = time.perf_counter()
    outcome = run_polystore(ctx, sf)
    elapsed = time.perf_counter() - start
    assert outcome.result, "Q5 returned no rows"
    if traced:
        assert ctx.tracer.find("optimizer.enumerate"), "no spans recorded"
    return elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="TPC-H scale factor (default 0.05)")
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--out", default="BENCH_trace_overhead.json")
    args = parser.parse_args(argv)

    # Warm-up (imports, first-touch allocation) outside the measurement.
    _run_once(args.sf, traced=False)
    _run_once(args.sf, traced=True)

    off, on = [], []
    for i in range(args.repeats):
        off.append(_run_once(args.sf, traced=False))
        on.append(_run_once(args.sf, traced=True))
        print(f"repeat {i}: off={off[-1]:.4f}s on={on[-1]:.4f}s")

    median_off = statistics.median(off)
    median_on = statistics.median(on)
    overhead = median_on / median_off - 1.0
    report = {
        "workload": "tpch_q5_polystore",
        "scale_factor": args.sf,
        "repeats": args.repeats,
        "tracing_off_s": {"median": median_off, "min": min(off),
                          "samples": off},
        "tracing_on_s": {"median": median_on, "min": min(on),
                         "samples": on},
        "overhead_fraction": overhead,
        "overhead_percent": overhead * 100.0,
        "budget_percent": 5.0,
        "within_budget": overhead < 0.05,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"tracing off: {median_off:.4f}s  on: {median_on:.4f}s  "
          f"overhead: {overhead * 100:.2f}% (budget 5%)")
    print(f"wrote {args.out}")
    return 0 if report["within_budget"] else 1


if __name__ == "__main__":
    sys.exit(main())
