#!/usr/bin/env python
"""Cold vs warm end-to-end latency under cross-job result reuse.

A re-submission-heavy mixed batch — the paper's TPC-H Q5 polystore query
plus WordCount — is executed repeatedly against one shared context, the
shape of an analyst iterating on a dashboard.  Per repeat the script
measures wall-clock for:

* ``cold`` — the first submission of the batch on a fresh context: full
  optimization, full execution, and the committed stage outputs are
  published to the intermediate-result store;
* ``warm`` — re-submitting freshly REBUILT but structurally identical
  plans (fresh operator objects, fresh lambdas): the optimizer's reuse
  probe recognizes the stored subplans and the jobs skip both plan
  enumeration and execution;
* ``plan_cache_only`` — the same warm re-submission with result reuse
  disabled: the pre-reuse fast path (plan-cache replay still executes),
  kept for the latency trajectory.

Every warm output is asserted bit-for-bit identical to its cold
counterpart, and the reuse-off outputs must agree too — reuse must be
invisible in the results.

The acceptance bar: warm must be >= 10x faster than cold end-to-end.

Usage::

    PYTHONPATH=src python scripts/bench_result_reuse.py [--sf 0.05]
        [--actual-scale 4] [--repeats 5] [--rounds 3]
        [--out BENCH_result_reuse.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.apps.dataciv import q5_quanta  # noqa: E402
from repro.workloads.tpch import TpchLite  # noqa: E402

CORPUS = "hdfs://bench/corpus.txt"


def _make_context(sf: float, actual_scale: float,
                  result_reuse: bool) -> RheemContext:
    ctx = RheemContext(config={"result_reuse": result_reuse})
    TpchLite(sf, actual_scale=actual_scale).place_for_q5(ctx)
    ctx.vfs.write(CORPUS,
                  ["the quick brown fox jumps over the lazy dog"] * 3_000,
                  sim_factor=200.0)
    return ctx


def _batch(ctx, sf: float):
    """Freshly built plans for the mixed batch (one analyst iteration)."""
    wordcount = (ctx.read_text_file(CORPUS)
                 .flat_map(str.split, bytes_per_record=12)
                 .map(lambda w: (w, 1), bytes_per_record=16)
                 .reduce_by_key(lambda t: t[0],
                                lambda a, b: (a[0], a[1] + b[1])))
    return [("tpch_q5_polystore", q5_quanta(ctx, sf, "polystore").to_plan()),
            ("wordcount", wordcount.to_plan())]


def _run_batch(ctx, sf: float) -> tuple[float, list]:
    start = time.perf_counter()
    outputs = [ctx.execute(plan).output for __, plan in _batch(ctx, sf)]
    return time.perf_counter() - start, outputs


def _measure(sf: float, actual_scale: float, repeats: int,
             rounds: int) -> dict:
    cold, warm, plan_only = [], [], []
    for __ in range(repeats):
        ctx = _make_context(sf, actual_scale, result_reuse=True)
        cold_s, cold_out = _run_batch(ctx, sf)
        cold.append(cold_s)
        assert ctx.result_store.stats["admissions"] >= 1, \
            "cold run published nothing"

        for ___ in range(rounds):
            hits_before = ctx.result_store.stats["hits"]
            warm_s, warm_out = _run_batch(ctx, sf)
            warm.append(warm_s)
            assert ctx.result_store.stats["hits"] > hits_before, \
                "warm run missed the result store"
            assert warm_out == cold_out, \
                "result reuse changed the output (bit-for-bit check)"

        off = _make_context(sf, actual_scale, result_reuse=False)
        __, off_cold_out = _run_batch(off, sf)
        assert off_cold_out == cold_out, \
            "reuse-off baseline disagrees with the cold run"
        off_s, off_out = _run_batch(off, sf)
        plan_only.append(off_s)
        assert off_out == cold_out

    def stats(samples):
        return {"median": statistics.median(samples), "min": min(samples),
                "samples": samples}

    warm_speedup = statistics.median(cold) / statistics.median(warm)
    plan_only_speedup = statistics.median(cold) / statistics.median(plan_only)
    return {
        "cold_s": stats(cold),
        "warm_s": stats(warm),
        "plan_cache_only_s": stats(plan_only),
        "warm_speedup": warm_speedup,
        "plan_cache_only_speedup": plan_only_speedup,
        "bit_for_bit": True,  # asserted above, per round
        "meets_10x_bar": warm_speedup >= 10.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="TPC-H scale factor (default 0.05)")
    parser.add_argument("--actual-scale", type=float, default=4.0,
                        help="multiplier on ACTUAL generated rows, so real "
                             "engine work dominates the cold runs")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--rounds", type=int, default=3,
                        help="warm re-submissions per repeat")
    parser.add_argument("--out", default="BENCH_result_reuse.json")
    args = parser.parse_args(argv)

    # Warm-up: imports, bytecode, first-touch allocations.
    ctx = _make_context(args.sf, args.actual_scale, result_reuse=True)
    _run_batch(ctx, args.sf)

    report = {
        "benchmark": "result_reuse",
        "repeats": args.repeats,
        "rounds": args.rounds,
        "workload": {
            "jobs": ["tpch_q5_polystore", "wordcount"],
            "scale_factor": args.sf,
            "actual_scale": args.actual_scale,
        },
        **_measure(args.sf, args.actual_scale, args.repeats, args.rounds),
    }

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwarm speedup: {report['warm_speedup']:.1f}x "
          f"(plan-cache only: {report['plan_cache_only_speedup']:.1f}x) "
          f"-> {'OK' if report['meets_10x_bar'] else 'BELOW 10x BAR'}")
    return 0 if report["meets_10x_bar"] else 1


if __name__ == "__main__":
    sys.exit(main())
