#!/usr/bin/env python
"""Compare fresh benchmark numbers against the committed baselines.

The CI ``benchmarks`` job re-runs ``scripts/bench_optimizer_cache.py``,
``scripts/bench_concurrency.py``, ``scripts/bench_stage_parallelism.py``,
``scripts/bench_batch_throughput.py``, ``scripts/bench_result_reuse.py``
and ``scripts/bench_calibration.py`` into a scratch directory, then
calls this script to compare the fresh reports against the
``BENCH_*.json`` files committed at the repository root.  Only *ratio*
metrics are gated — warm-cache speedup, concurrency throughput scaling,
intra-job stage-parallel speedup and the vectorized-engine record-
throughput speedups — because absolute timings vary with the runner
hardware while ratios are self-normalizing; absolute numbers are printed
for context.

A metric regresses when ``fresh < baseline * (1 - tolerance)``; the
tolerance defaults to 0.25 (25%) and can be overridden via the
``BENCH_REGRESSION_TOLERANCE`` environment variable or ``--tolerance``.
Missing fresh files fail; missing individual metrics fail; higher-than-
baseline fresh numbers always pass (improvements are not regressions).

Exit status: 0 when every gated metric holds (including when comparing
the committed baselines against themselves), 1 on any regression, 2 on
malformed input.

``--summary PATH`` additionally writes a compact markdown table of every
gated metric (fresh vs baseline, ratio, verdict) — CI appends it to
``$GITHUB_STEP_SUMMARY`` so regressions are readable from the run page
without digging through logs.

Usage::

    python scripts/check_bench_regression.py --fresh /tmp/bench \
        [--baseline .] [--tolerance 0.25] [--summary summary.md]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: (file, human name, path of keys into the report) — all higher-is-better.
GATED_METRICS: list[tuple[str, str, tuple[str, ...]]] = [
    ("BENCH_optimizer_latency.json",
     "warm-cache speedup (tpch_q5_polystore)",
     ("workloads", "tpch_q5_polystore", "warm_speedup")),
    ("BENCH_optimizer_latency.json",
     "warm-cache speedup (wide_merge_topology)",
     ("workloads", "wide_merge_topology", "warm_speedup")),
    ("BENCH_concurrency.json",
     "concurrency throughput speedup (4 workers vs 1)",
     ("speedup_4v1",)),
    ("BENCH_concurrency.json",
     "process-backend throughput speedup (8 shards vs 1)",
     ("process_speedup_8v1",)),
    ("BENCH_stage_parallelism.json",
     "stage-parallel wall speedup (4 lanes vs serial)",
     ("speedup_4v1",)),
    ("BENCH_batch_throughput.json",
     "batch record-throughput speedup (tpch_q5, engine-bound)",
     ("variants", "q5_engine", "speedup")),
    ("BENCH_batch_throughput.json",
     "batch end-to-end speedup (tpch_q5, polystore)",
     ("variants", "q5_polystore_end_to_end", "speedup")),
    ("BENCH_result_reuse.json",
     "result-reuse warm speedup (mixed resubmission batch)",
     ("warm_speedup",)),
    ("BENCH_calibration.json",
     "online-calibration end-to-end speedup (mis-costed workload)",
     ("calibration_speedup",)),
    ("BENCH_calibration.json",
     "beam-enumeration speedup vs lossless (60-op chain)",
     ("beam", "beam_speedup")),
]

#: Printed for context, never gated (absolute, hardware-dependent).
CONTEXT_METRICS: list[tuple[str, str, tuple[str, ...]]] = [
    ("BENCH_concurrency.json", "throughput at 4 workers (jobs/s)",
     ("configs", "4", "throughput_jobs_per_s")),
    ("BENCH_concurrency.json", "p95 latency at 4 workers (s)",
     ("configs", "4", "latency_p95_s")),
]


def _load(directory: Path, name: str) -> dict:
    path = directory / name
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: missing benchmark report {path}", file=sys.stderr)
        raise
    except json.JSONDecodeError as exc:
        print(f"error: malformed benchmark report {path}: {exc}",
              file=sys.stderr)
        raise


def _extract(report: dict, keys: tuple[str, ...]) -> float | None:
    node = report
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, type=Path,
                        help="directory holding the freshly produced "
                             "BENCH_*.json reports")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory holding the committed baselines "
                             "(default: the repository root)")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.25")),
        help="allowed fractional regression (default 0.25, i.e. fail only "
             "when a metric drops by more than 25%%; env: "
             "BENCH_REGRESSION_TOLERANCE)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="also write a markdown comparison table here "
                             "(for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print(f"error: tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2

    try:
        fresh_reports = {name: _load(args.fresh, name)
                         for name, __, ___ in GATED_METRICS}
        baseline_reports = {name: _load(args.baseline, name)
                            for name, __, ___ in GATED_METRICS}
    except (FileNotFoundError, json.JSONDecodeError):
        return 2

    failures = 0
    rows: list[tuple[str, str, str, str, str]] = []
    for name, label, keys in GATED_METRICS:
        fresh = _extract(fresh_reports[name], keys)
        baseline = _extract(baseline_reports[name], keys)
        if fresh is None or baseline is None:
            print(f"FAIL  {label}: metric missing "
                  f"(fresh={fresh}, baseline={baseline})")
            failures += 1
            rows.append((label, "missing" if fresh is None else f"{fresh:.2f}",
                         "missing" if baseline is None else f"{baseline:.2f}",
                         "—", ":x:"))
            continue
        floor = baseline * (1.0 - args.tolerance)
        verdict = "ok  " if fresh >= floor else "FAIL"
        if fresh < floor:
            failures += 1
        print(f"{verdict}  {label}: fresh {fresh:.2f} vs baseline "
              f"{baseline:.2f} (floor {floor:.2f})")
        ratio = fresh / baseline if baseline else float("inf")
        rows.append((label, f"{fresh:.2f}x", f"{baseline:.2f}x",
                     f"{ratio:.2f}",
                     ":white_check_mark:" if fresh >= floor else ":x:"))

    if args.summary is not None:
        lines = ["### Benchmark ratios vs committed baseline",
                 "",
                 f"Tolerance: {args.tolerance:.0%} "
                 f"(fail when fresh < baseline × {1 - args.tolerance:.2f})",
                 "",
                 "| metric | fresh | baseline | fresh/baseline | gate |",
                 "| --- | ---: | ---: | ---: | :---: |"]
        lines += [f"| {label} | {fresh} | {base} | {ratio} | {mark} |"
                  for label, fresh, base, ratio, mark in rows]
        args.summary.write_text("\n".join(lines) + "\n")

    for name, label, keys in CONTEXT_METRICS:
        fresh = _extract(fresh_reports.get(name, {}), keys)
        baseline = _extract(baseline_reports.get(name, {}), keys)
        if fresh is not None and baseline is not None:
            print(f"info  {label}: fresh {fresh:.2f} vs baseline "
                  f"{baseline:.2f} (not gated)")

    if failures:
        print(f"{failures} benchmark metric(s) regressed beyond "
              f"{args.tolerance:.0%} tolerance")
        return 1
    print(f"all gated benchmark metrics within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
