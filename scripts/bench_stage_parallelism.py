#!/usr/bin/env python
"""Intra-job stage parallelism: wall-clock speedup at equal results.

One wide polystore plan — independent branches pinned onto different
platforms, merged by a balanced union tree — runs at several
``stage_parallelism`` settings.  Driver-to-platform latency is modelled
with ``config["stage_wall_s"]``: every stage attempt dwells that many
wall-clock seconds, the way a real driver waits on a cluster RPC.  The
concurrent stage scheduler overlaps those dwells across lanes while
committing in stage-list order, so the *only* thing allowed to change
with parallelism is the wall clock: outputs, monitor contents and the
simulated makespan are asserted bit-for-bit identical to the serial run.

Reported per parallelism level: best-of-N wall seconds and the speedup
over serial.  The acceptance bar: >= 2x wall-clock at 4 lanes vs 1.

Usage::

    PYTHONPATH=src python scripts/bench_stage_parallelism.py
        [--parallelism 1 4 8] [--stage-wall-ms 50] [--branches 8]
        [--depth 3] [--repeats 3] [--out BENCH_stage_parallelism.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402

#: Platforms the branches cycle through — the default parallelism is the
#: distinct-platform count, so a real polystore spread matters.
BRANCH_PLATFORMS = ["pystreams", "sparklite", "flinklite"]


def _wide_plan(ctx: RheemContext, branches: int, depth: int):
    """``branches`` independent pinned pipelines, merged pairwise.

    Each branch hops across ``depth`` platforms (every hop is a stage
    boundary), and the union tree is balanced so the critical path is
    ``depth`` branch stages plus O(log branches) union stages — the
    branch work is where the overlap happens.
    """
    quanta = []
    for i in range(branches):
        quantum = ctx.load_collection(list(range(20)), sim_factor=2_000.0)
        for hop in range(depth):
            platform = BRANCH_PLATFORMS[(i + hop) % len(BRANCH_PLATFORMS)]
            quantum = (quantum.map(lambda x: x + 1)
                       .with_target_platform(platform))
        quanta.append(quantum)
    while len(quanta) > 1:
        quanta = [quanta[i].union(quanta[i + 1])
                  if i + 1 < len(quanta) else quanta[i]
                  for i in range(0, len(quanta), 2)]
    return quanta[0]


def _fingerprint(result) -> dict:
    """Everything that must match bit-for-bit between parallelism levels."""
    return {
        "output": sorted(result.output),
        "makespan": result.runtime,
        "stage_count": result.stage_count,
        "platforms": sorted(result.platforms),
        "timings": sorted((t.stage_id, t.start, t.duration)
                          for t in result.tracker.timings()),
        "stage_timeline": [(t.stage_id, t.start, t.duration)
                           for t in result.monitor.stage_timings],
        "actual_cardinalities": sorted(result.monitor.actuals.values()),
    }


def _run_once(parallelism: int, branches: int, depth: int,
              stage_wall_s: float):
    ctx = RheemContext(config={"stage_wall_s": stage_wall_s,
                               "stage_parallelism": parallelism})
    plan = _wide_plan(ctx, branches, depth)
    start = time.perf_counter()
    result = plan.execute()
    return time.perf_counter() - start, result


def _run_config(parallelism: int, branches: int, depth: int,
                stage_wall_s: float, repeats: int) -> tuple[dict, dict]:
    walls = []
    fingerprint = None
    for __ in range(repeats):
        wall_s, result = _run_once(parallelism, branches, depth,
                                   stage_wall_s)
        walls.append(wall_s)
        fp = _fingerprint(result)
        assert fingerprint is None or fp == fingerprint, \
            "non-deterministic result within one configuration"
        fingerprint = fp
    return {
        "parallelism": parallelism,
        "wall_s": min(walls),
        "wall_s_all": walls,
        "stages": fingerprint["stage_count"],
        "simulated_makespan_s": fingerprint["makespan"],
    }, fingerprint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--parallelism", type=int, nargs="+",
                        default=[1, 4, 8])
    parser.add_argument("--stage-wall-ms", type=float, default=50.0,
                        help="modelled driver<->platform round trip per "
                             "stage attempt (default 50 ms)")
    parser.add_argument("--branches", type=int, default=8,
                        help="independent pinned branches (default 8)")
    parser.add_argument("--depth", type=int, default=3,
                        help="platform hops (= stages) per branch "
                             "(default 3)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration; best wall wins")
    parser.add_argument("--out", default="BENCH_stage_parallelism.json")
    args = parser.parse_args(argv)

    stage_wall_s = args.stage_wall_ms / 1000.0
    configs: dict[str, dict] = {}
    baseline_fp = None
    for parallelism in args.parallelism:
        config, fingerprint = _run_config(
            parallelism, args.branches, args.depth, stage_wall_s,
            args.repeats)
        # The scheduler's core contract: parallelism changes the wall
        # clock and nothing else.
        assert baseline_fp is None or fingerprint == baseline_fp, \
            f"parallelism={parallelism} changed the observable result"
        baseline_fp = fingerprint
        configs[str(parallelism)] = config
        print(f"{parallelism} lane(s): {config['wall_s']:.3f} s wall "
              f"(best of {args.repeats}), {config['stages']} stages, "
              f"simulated makespan {config['simulated_makespan_s']:.3f} s")

    base = configs.get("1")
    report = {
        "benchmark": "stage_parallelism",
        "workload": f"{args.branches}-branch depth-{args.depth} pinned "
                    f"polystore union tree",
        "stage_wall_ms": args.stage_wall_ms,
        "branches": args.branches,
        "depth": args.depth,
        "repeats": args.repeats,
        "identical_results": True,
        "configs": configs,
        "speedups_vs_serial": {
            name: base["wall_s"] / cfg["wall_s"]
            for name, cfg in configs.items()
        } if base else {},
    }
    speedup_4 = report["speedups_vs_serial"].get("4")
    report["speedup_4v1"] = speedup_4
    report["meets_2x_bar"] = bool(speedup_4 and speedup_4 >= 2.0)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if speedup_4 is not None:
        print(f"4-lane speedup over serial: {speedup_4:.2f}x "
              f"({'meets' if report['meets_2x_bar'] else 'MISSES'} "
              f"the 2x bar)")
    print(f"wrote {args.out}")
    return 0 if report["meets_2x_bar"] or speedup_4 is None else 1


if __name__ == "__main__":
    sys.exit(main())
