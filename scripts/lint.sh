#!/bin/sh
# Lint gate: ruff (style, incl. scripts/) + mypy (strict types on
# repro.analysis/repro.trace/repro.core/repro.server) + the repo's own
# plan linter over the shipped examples.
#
# ruff and mypy are optional dev tools (`pip install -e .[lint]`); when one
# is missing, its step is SKIPPED with a notice instead of failing, so the
# script stays usable in offline environments.  The plan-lint step only
# needs the repo itself and always runs.
#
# Usage: scripts/lint.sh [--fast]   (--fast skips the example plan-lint)

set -u
cd "$(dirname "$0")/.."

failures=0

if command -v ruff >/dev/null 2>&1; then
    echo "==> ruff check"
    ruff check src tests examples scripts || failures=$((failures + 1))
else
    echo "==> ruff not installed; SKIPPED (pip install -e .[lint])"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "==> mypy (strict: repro.analysis, repro.trace, repro.core," \
         "repro.server, repro.concurrency)"
    mypy || failures=$((failures + 1))
else
    echo "==> mypy not installed; SKIPPED (pip install -e .[lint])"
fi

# Always runs (it only needs the stdlib + the repo): the lock-registry
# checker over src/repro/ — rank inversions, undeclared locks, blocking
# calls under a lock, unguarded writes to registry-declared attributes.
echo "==> concurrency lint (lock registry)"
PYTHONPATH=src python -m repro lint --concurrency \
    || failures=$((failures + 1))

if [ "${1:-}" != "--fast" ]; then
    echo "==> plan lint over examples/"
    for script in examples/*.py; do
        echo "    $script"
        PYTHONPATH=src python -m repro lint "$script" >/dev/null \
            || { echo "    FAILED: $script"; failures=$((failures + 1)); }
    done
fi

if [ "$failures" -ne 0 ]; then
    echo "lint: $failures step(s) failed"
    exit 1
fi
echo "lint: ok"
