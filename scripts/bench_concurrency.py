#!/usr/bin/env python
"""Job-server throughput and latency under a mixed concurrent load.

One serving configuration per worker count runs a mixed stream of
**TPC-H Q5-style** documents (orders x lineitem from HDFS joined against
the relational customer table — a genuinely cross-platform job) and
**wordcount** documents, submitted all at once through the
:class:`repro.server.JobServer` admission queue.

Driver-to-platform latency is modelled with ``config["stage_wall_s"]``:
every executed stage dwells that many wall-clock seconds, the way a real
driver waits on a cluster RPC.

Two sections:

* **thread backend** (the baseline): worker threads overlap the RPC
  dwells over ONE shared context; the CPU-side work (optimization on a
  warm plan cache + simulated execution) runs under the GIL and bounds
  the achievable speedup.  Bar: >= 2x throughput at 4 workers vs 1.
* **process backend** (``--backend process``/``both``): one context
  replica per worker process with sticky plan-fingerprint routing,
  measured at its own (larger) dwell — the cluster-RPC regime the
  process pool exists for, where per-job CPU is small against the
  stage dwell and the GIL would idle a thread pool's cores.  Bar:
  >= 6x throughput at 8 shards vs 1 shard, plus **bit-for-bit result
  parity** with a thread-backend run of the identical document stream
  (output, simulated runtime and chosen platforms all equal, per job).

Reported per worker count: wall time, throughput, and p50/p95 of the
per-job *total* latency (admission to completion, queue wait included).

Usage::

    PYTHONPATH=src python scripts/bench_concurrency.py [--jobs-per-config 24]
        [--workers 1 4 8] [--stage-wall-ms 20] [--sf 0.01]
        [--backend both] [--process-workers 1 8]
        [--process-stage-wall-ms 100] [--out BENCH_concurrency.json]
"""

from __future__ import annotations

import argparse
import functools
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.server import JobServer, JobState  # noqa: E402
from repro.workloads.tpch import TpchLite  # noqa: E402

WORDCOUNT_DOC = {
    "operators": [
        {"name": "lines", "kind": "textfile_source",
         "path": "hdfs://bench/corpus.txt"},
        {"name": "words", "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs", "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
    ],
    "sink": {"name": "counts"},
}

# Q5-flavoured polystore join: the fact tables live on HDFS as CSV, the
# customer dimension in the relational store — the optimizer must cross
# platforms, the executor must convert channels.
TPCH_DOC = {
    "operators": [
        {"name": "orders_raw", "kind": "textfile_source",
         "path": "hdfs://tpch/orders.csv"},
        {"name": "orders", "kind": "map", "input": "orders_raw",
         "expr": "x.split('|')"},
        {"name": "lineitem_raw", "kind": "textfile_source",
         "path": "hdfs://tpch/lineitem.csv"},
        {"name": "lineitem", "kind": "map", "input": "lineitem_raw",
         "expr": "x.split('|')"},
        {"name": "ol", "kind": "join", "left": "orders", "right": "lineitem",
         "left_key": "x[0]", "right_key": "x[0]"},
        {"name": "customer", "kind": "table_source", "table": "customer"},
        {"name": "col", "kind": "join", "left": "customer", "right": "ol",
         "left_key": "str(x['custkey'])", "right_key": "x[0][1]"},
        {"name": "revenue", "kind": "map", "input": "col",
         "expr": "float(x[1][1][2]) * (1 - float(x[1][1][3]))"},
        {"name": "total", "kind": "reduce", "input": "revenue",
         "reducer": "a + b"},
    ],
    "sink": {"name": "total"},
}


def _make_context(sf: float, stage_wall_s: float) -> RheemContext:
    ctx = RheemContext(config={"stage_wall_s": stage_wall_s})
    TpchLite(sf).place_for_q5(ctx)
    ctx.vfs.write("hdfs://bench/corpus.txt",
                  ["the quick brown fox", "jumps over the lazy dog",
                   "the fox"] * 20, sim_factor=500.0)
    return ctx


def _mixed_documents(count: int) -> list[dict]:
    return [TPCH_DOC if i % 2 == 0 else WORDCOUNT_DOC for i in range(count)]


def _run_config(workers: int, jobs: int, sf: float, stage_wall_s: float,
                backend: str = "thread") -> tuple[dict, list[dict]]:
    if backend == "process":
        server = JobServer(
            workers=workers, queue_size=jobs, backend="process",
            tracing=False,
            context_factory=functools.partial(_make_context, sf,
                                              stage_wall_s))
    else:
        server = JobServer(_make_context(sf, stage_wall_s), workers=workers,
                           queue_size=jobs, tracing=False)
    with server:
        # Warm the caches identically for every configuration: the
        # measured regime is the server's steady state (repeated submission
        # of known job shapes), not first-contact compilation.  ``warm``
        # broadcasts to every shard on the process backend, so no shard
        # pays cold-plan costs inside the measured window.
        for doc in (TPCH_DOC, WORDCOUNT_DOC):
            server.warm(doc)
        documents = _mixed_documents(jobs)
        start = time.perf_counter()
        handles = [server.submit(doc) for doc in documents]
        responses = [server.result(h.job_id, timeout=600) for h in handles]
        wall_s = time.perf_counter() - start
    assert all(h.state is JobState.DONE for h in handles), \
        [h.state for h in handles]
    assert all(r["status"] == "ok" for r in responses)
    latencies = sorted(h.finished_at - h.submitted_at for h in handles)

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    stats = {
        "backend": backend,
        "workers": workers,
        "jobs": jobs,
        "wall_s": wall_s,
        "throughput_jobs_per_s": jobs / wall_s,
        "latency_p50_s": pct(0.50),
        "latency_p95_s": pct(0.95),
        "latency_mean_s": statistics.mean(latencies),
    }
    return stats, responses


def _parity_key(response: dict) -> tuple:
    """The observable result of a job, for bit-for-bit comparison."""
    return (json.dumps(response["output"], sort_keys=True),
            response["runtime"], response["platforms"])


def _print_config(c: dict) -> None:
    print(f"[{c['backend']}] {c['workers']} worker(s): "
          f"{c['wall_s']:.2f} s wall, "
          f"{c['throughput_jobs_per_s']:.1f} jobs/s, "
          f"p50 {c['latency_p50_s'] * 1e3:.0f} ms, "
          f"p95 {c['latency_p95_s'] * 1e3:.0f} ms")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs-per-config", type=int, default=24)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 4, 8])
    parser.add_argument("--stage-wall-ms", type=float, default=20.0,
                        help="modelled driver<->platform round trip per "
                             "stage for the thread section (default 20 ms)")
    parser.add_argument("--backend", choices=["thread", "process", "both"],
                        default="both",
                        help="which server backend(s) to measure")
    parser.add_argument("--process-workers", type=int, nargs="+",
                        default=[1, 8],
                        help="shard counts for the process section")
    parser.add_argument("--process-stage-wall-ms", type=float, default=100.0,
                        help="modelled round trip per stage for the process "
                             "section — the cluster-RPC regime the process "
                             "pool targets (default 100 ms)")
    parser.add_argument("--sf", type=float, default=0.01,
                        help="TPC-H scale factor (default 0.01)")
    parser.add_argument("--out", default="BENCH_concurrency.json")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "server_concurrency",
        "workload": "mixed tpch-q5-polystore + wordcount",
        "jobs_per_config": args.jobs_per_config,
        "stage_wall_ms": args.stage_wall_ms,
        "scale_factor": args.sf,
    }
    failed = False

    if args.backend in ("thread", "both"):
        configs = {}
        for workers in args.workers:
            configs[str(workers)], __ = _run_config(
                workers, args.jobs_per_config, args.sf,
                args.stage_wall_ms / 1000.0)
            _print_config(configs[str(workers)])
        base = configs.get("1")
        report["configs"] = configs
        report["speedups_vs_1_worker"] = {
            name: cfg["throughput_jobs_per_s"]
            / base["throughput_jobs_per_s"]
            for name, cfg in configs.items()
        } if base else {}
        speedup_4 = report["speedups_vs_1_worker"].get("4")
        report["speedup_4v1"] = speedup_4
        report["meets_2x_bar"] = bool(speedup_4 and speedup_4 >= 2.0)
        if speedup_4 is not None:
            print(f"4-worker speedup over 1 worker: {speedup_4:.2f}x "
                  f"({'meets' if report['meets_2x_bar'] else 'MISSES'} "
                  f"the 2x bar)")
            failed |= not report["meets_2x_bar"]

    if args.backend in ("process", "both"):
        dwell_s = args.process_stage_wall_ms / 1000.0
        # One thread-backend worker at the process section's dwell is the
        # parity reference: same documents, same simulated cluster, one
        # shared context — the results every process run must reproduce
        # bit for bit.
        ref_stats, ref_responses = _run_config(
            1, args.jobs_per_config, args.sf, dwell_s)
        _print_config({**ref_stats, "backend": "thread-ref"})
        expected = [_parity_key(r) for r in ref_responses]

        process_configs = {}
        parity_ok = True
        for workers in args.process_workers:
            stats, responses = _run_config(
                workers, args.jobs_per_config, args.sf, dwell_s,
                backend="process")
            process_configs[str(workers)] = stats
            _print_config(stats)
            for i, response in enumerate(responses):
                if _parity_key(response) != expected[i]:
                    print(f"PARITY FAILURE: job {i} on {workers}-shard "
                          f"process run diverged from the thread run")
                    parity_ok = False
        p_base = process_configs.get("1")
        report["process_stage_wall_ms"] = args.process_stage_wall_ms
        report["process_configs"] = process_configs
        report["process_speedups_vs_1_shard"] = {
            name: cfg["throughput_jobs_per_s"]
            / p_base["throughput_jobs_per_s"]
            for name, cfg in process_configs.items()
        } if p_base else {}
        speedup_8 = report["process_speedups_vs_1_shard"].get("8")
        report["process_speedup_8v1"] = speedup_8
        report["process_meets_6x_bar"] = bool(speedup_8 and speedup_8 >= 6.0)
        report["process_thread_parity"] = parity_ok
        if speedup_8 is not None:
            print(f"8-shard speedup over 1 shard: {speedup_8:.2f}x "
                  f"({'meets' if report['process_meets_6x_bar'] else 'MISSES'}"
                  f" the 6x bar)")
            failed |= not report["process_meets_6x_bar"]
        print(f"thread/process result parity: "
              f"{'OK' if parity_ok else 'BROKEN'}")
        failed |= not parity_ok

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
