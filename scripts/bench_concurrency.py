#!/usr/bin/env python
"""Job-server throughput and latency under a mixed concurrent load.

One shared context per worker-count configuration serves a mixed stream of
**TPC-H Q5-style** documents (orders x lineitem from HDFS joined against
the relational customer table — a genuinely cross-platform job) and
**wordcount** documents, submitted all at once through the
:class:`repro.server.JobServer` admission queue.

Driver-to-platform latency is modelled with ``config["stage_wall_s"]``:
every executed stage dwells that many wall-clock seconds, the way a real
driver waits on a cluster RPC.  Worker threads overlap those waits, so
throughput scales with the pool size while the shared optimizer caches
stay warm across all workers — exactly the deployment the server exists
for.  The CPU-side work (optimization on a warm plan cache + simulated
execution) runs under the GIL and bounds the achievable speedup.

Reported per worker count: wall time, throughput, and p50/p95 of the
per-job *total* latency (admission to completion, queue wait included).
The acceptance bar: >= 2x throughput at 4 workers vs 1.

Usage::

    PYTHONPATH=src python scripts/bench_concurrency.py [--jobs-per-config 24]
        [--workers 1 4 8] [--stage-wall-ms 20] [--sf 0.01]
        [--out BENCH_concurrency.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.server import JobServer, JobState  # noqa: E402
from repro.workloads.tpch import TpchLite  # noqa: E402

WORDCOUNT_DOC = {
    "operators": [
        {"name": "lines", "kind": "textfile_source",
         "path": "hdfs://bench/corpus.txt"},
        {"name": "words", "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs", "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
    ],
    "sink": {"name": "counts"},
}

# Q5-flavoured polystore join: the fact tables live on HDFS as CSV, the
# customer dimension in the relational store — the optimizer must cross
# platforms, the executor must convert channels.
TPCH_DOC = {
    "operators": [
        {"name": "orders_raw", "kind": "textfile_source",
         "path": "hdfs://tpch/orders.csv"},
        {"name": "orders", "kind": "map", "input": "orders_raw",
         "expr": "x.split('|')"},
        {"name": "lineitem_raw", "kind": "textfile_source",
         "path": "hdfs://tpch/lineitem.csv"},
        {"name": "lineitem", "kind": "map", "input": "lineitem_raw",
         "expr": "x.split('|')"},
        {"name": "ol", "kind": "join", "left": "orders", "right": "lineitem",
         "left_key": "x[0]", "right_key": "x[0]"},
        {"name": "customer", "kind": "table_source", "table": "customer"},
        {"name": "col", "kind": "join", "left": "customer", "right": "ol",
         "left_key": "str(x['custkey'])", "right_key": "x[0][1]"},
        {"name": "revenue", "kind": "map", "input": "col",
         "expr": "float(x[1][1][2]) * (1 - float(x[1][1][3]))"},
        {"name": "total", "kind": "reduce", "input": "revenue",
         "reducer": "a + b"},
    ],
    "sink": {"name": "total"},
}


def _make_context(sf: float, stage_wall_s: float) -> RheemContext:
    ctx = RheemContext(config={"stage_wall_s": stage_wall_s})
    TpchLite(sf).place_for_q5(ctx)
    ctx.vfs.write("hdfs://bench/corpus.txt",
                  ["the quick brown fox", "jumps over the lazy dog",
                   "the fox"] * 20, sim_factor=500.0)
    return ctx


def _mixed_documents(count: int) -> list[dict]:
    return [TPCH_DOC if i % 2 == 0 else WORDCOUNT_DOC for i in range(count)]


def _run_config(workers: int, jobs: int, sf: float,
                stage_wall_s: float) -> dict:
    ctx = _make_context(sf, stage_wall_s)
    with JobServer(ctx, workers=workers, queue_size=jobs) as server:
        # Warm the shared caches identically for every configuration: the
        # measured regime is the server's steady state (repeated submission
        # of known job shapes), not first-contact compilation.
        for doc in (TPCH_DOC, WORDCOUNT_DOC):
            response = server.submit_sync(doc)
            assert response["status"] == "ok", response
        documents = _mixed_documents(jobs)
        start = time.perf_counter()
        handles = [server.submit(doc) for doc in documents]
        responses = [server.result(h.job_id) for h in handles]
        wall_s = time.perf_counter() - start
    assert all(h.state is JobState.DONE for h in handles), \
        [h.state for h in handles]
    assert all(r["status"] == "ok" for r in responses)
    latencies = sorted(h.finished_at - h.submitted_at for h in handles)

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "workers": workers,
        "jobs": jobs,
        "wall_s": wall_s,
        "throughput_jobs_per_s": jobs / wall_s,
        "latency_p50_s": pct(0.50),
        "latency_p95_s": pct(0.95),
        "latency_mean_s": statistics.mean(latencies),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs-per-config", type=int, default=24)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 4, 8])
    parser.add_argument("--stage-wall-ms", type=float, default=20.0,
                        help="modelled driver<->platform round trip per "
                             "stage (default 20 ms)")
    parser.add_argument("--sf", type=float, default=0.01,
                        help="TPC-H scale factor (default 0.01)")
    parser.add_argument("--out", default="BENCH_concurrency.json")
    args = parser.parse_args(argv)

    configs = {}
    for workers in args.workers:
        configs[str(workers)] = _run_config(
            workers, args.jobs_per_config, args.sf,
            args.stage_wall_ms / 1000.0)
        c = configs[str(workers)]
        print(f"{workers} worker(s): {c['wall_s']:.2f} s wall, "
              f"{c['throughput_jobs_per_s']:.1f} jobs/s, "
              f"p50 {c['latency_p50_s'] * 1e3:.0f} ms, "
              f"p95 {c['latency_p95_s'] * 1e3:.0f} ms")

    base = configs.get("1")
    report = {
        "benchmark": "server_concurrency",
        "workload": "mixed tpch-q5-polystore + wordcount",
        "jobs_per_config": args.jobs_per_config,
        "stage_wall_ms": args.stage_wall_ms,
        "scale_factor": args.sf,
        "configs": configs,
        "speedups_vs_1_worker": {
            name: cfg["throughput_jobs_per_s"]
            / base["throughput_jobs_per_s"]
            for name, cfg in configs.items()
        } if base else {},
    }
    speedup_4 = report["speedups_vs_1_worker"].get("4")
    report["speedup_4v1"] = speedup_4
    report["meets_2x_bar"] = bool(speedup_4 and speedup_4 >= 2.0)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if speedup_4 is not None:
        print(f"4-worker speedup over 1 worker: {speedup_4:.2f}x "
              f"({'meets' if report['meets_2x_bar'] else 'MISSES'} "
              f"the 2x bar)")
    print(f"wrote {args.out}")
    return 0 if report["meets_2x_bar"] or speedup_4 is None else 1


if __name__ == "__main__":
    sys.exit(main())
