#!/usr/bin/env python
"""Cold vs warm optimizer latency under the plan/conversion caches.

Two workloads exercise the optimizer fast path:

* **TPC-H Q5 polystore** — the paper's data-civilizer query over three
  stores: ~20 operators, joins across platform boundaries, plenty of
  conversion-path solving.
* **Synthetic wide merge topology** — many parallel branches unioned into
  one sink, stressing the enumerator's signature pruning with wide open-
  channel frontiers.

For each workload the script measures, per repeat:

* ``cold``   — first optimization on a fresh context (all caches empty);
* ``warm``   — re-optimizing a freshly *rebuilt* but structurally identical
  plan on the same context, i.e. the repeated-submission path: the
  execution-plan cache hit pays fingerprinting + static analysis only;
* ``uncached`` — the same cold optimization with every cache disabled
  (the pre-fast-path baseline, kept for the latency trajectory).

The acceptance bar: warm must be >= 2x faster than cold.

Usage::

    PYTHONPATH=src python scripts/bench_optimizer_cache.py [--sf 0.05]
        [--repeats 5] [--width 8] [--out BENCH_optimizer_latency.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.apps.dataciv import q5_quanta  # noqa: E402
from repro.workloads.tpch import TpchLite  # noqa: E402


def _q5_plan(ctx, sf: float):
    return q5_quanta(ctx, sf, "polystore").to_plan()


def _q5_context(sf: float) -> RheemContext:
    ctx = RheemContext()
    TpchLite(sf).place_for_q5(ctx)
    return ctx


def _wide_merge_plan(ctx, width: int):
    branches = [
        ctx.load_collection(list(range(64)), sim_factor=20_000.0)
        .map(lambda x: x * 2)
        .filter(lambda x: x % 3 != 0)
        for __ in range(width)
    ]
    merged = branches[0]
    for branch in branches[1:]:
        merged = merged.union(branch)
    return merged.distinct().to_plan()


def _measure(make_ctx, make_plan, repeats: int) -> dict:
    cold, warm, uncached = [], [], []
    for __ in range(repeats):
        ctx = make_ctx()
        plan = make_plan(ctx)
        start = time.perf_counter()
        ctx.optimize(plan)
        cold.append(time.perf_counter() - start)

        # Repeated submission: a structurally identical plan is REBUILT
        # (fresh operator objects, fresh lambdas) and optimized again on
        # the same context — fingerprinting is part of the warm cost.
        replay = make_plan(ctx)
        start = time.perf_counter()
        ctx.optimize(replay)
        warm.append(time.perf_counter() - start)
        assert ctx.plan_cache.stats["hits"] >= 1, "warm run missed the cache"

        bare = make_ctx()
        bare.plan_cache.enabled = False
        bare.graph.caching = False
        bare_plan = make_plan(bare)
        start = time.perf_counter()
        bare.optimize(bare_plan)
        uncached.append(time.perf_counter() - start)

    def stats(samples):
        return {"median": statistics.median(samples), "min": min(samples),
                "samples": samples}

    speedup = statistics.median(cold) / statistics.median(warm)
    return {
        "cold_s": stats(cold),
        "warm_s": stats(warm),
        "uncached_s": stats(uncached),
        "warm_speedup": speedup,
        "meets_2x_bar": speedup >= 2.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.05,
                        help="TPC-H scale factor (default 0.05)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--width", type=int, default=8,
                        help="branch count of the synthetic merge topology")
    parser.add_argument("--out", default="BENCH_optimizer_latency.json")
    args = parser.parse_args(argv)

    # Warm-up: imports, bytecode, first-touch allocations.
    ctx = _q5_context(args.sf)
    ctx.optimize(_q5_plan(ctx, args.sf))

    report = {
        "benchmark": "optimizer_latency",
        "repeats": args.repeats,
        "workloads": {
            "tpch_q5_polystore": {
                "scale_factor": args.sf,
                **_measure(lambda: _q5_context(args.sf),
                           lambda c: _q5_plan(c, args.sf), args.repeats),
            },
            "wide_merge_topology": {
                "width": args.width,
                **_measure(RheemContext,
                           lambda c: _wide_merge_plan(c, args.width),
                           args.repeats),
            },
        },
    }
    report["meets_2x_bar"] = all(
        w["meets_2x_bar"] for w in report["workloads"].values())
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, data in report["workloads"].items():
        print(f"{name}: cold {data['cold_s']['median'] * 1e3:.1f} ms, "
              f"warm {data['warm_s']['median'] * 1e3:.1f} ms, "
              f"uncached {data['uncached_s']['median'] * 1e3:.1f} ms "
              f"-> warm speedup {data['warm_speedup']:.1f}x")
    print(f"wrote {args.out}")
    return 0 if report["meets_2x_bar"] else 1


if __name__ == "__main__":
    sys.exit(main())
