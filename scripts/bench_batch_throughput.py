#!/usr/bin/env python
"""Record throughput of the vectorized (record-batch) engines on TPC-H Q5.

Runs Q5 at simulated scale factor 0.1 twice per configuration — once on
the legacy per-record engines, once with ``config={"vectorize": True}``
— and measures the executor phase only (plan enumeration is identical in
both modes by construction).  ``--actual-scale`` multiplies the *actual*
in-memory rows while ``sim_factor`` shrinks in proportion, so simulated
volumes, plan choice and the simulated runtime are unchanged; only the
real work grows to a measurable size.

Two variants are reported:

* ``q5_engine`` — Q5 over in-memory structured collections.  Every
  operator (joins, filters, projections, aggregation, sort) runs on the
  engines; this isolates exactly the per-record interpreter dispatch the
  batch refactor removes and is the gated headline metric
  (bar: >= 5x record throughput).
* ``q5_polystore_end_to_end`` — the Figure 2(d) polystore placement,
  including the CSV-parse map over the HDFS text files.  The parse UDF
  is string work that vectorizes far less than dispatch does, so this
  end-to-end ratio is lower; it is reported (and regression-gated) but
  carries no 5x bar.

Both variants assert, in-bench, that the vectorized run returns the
bit-for-bit identical query result AND the bit-for-bit identical
simulated runtime as the per-record run.

Usage::

    PYTHONPATH=src python scripts/bench_batch_throughput.py
        [--actual-scale 50] [--repeats 3] [--out BENCH_batch_throughput.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.apps import dataciv  # noqa: E402
from repro.workloads.tpch import ROW_BYTES, SF1_ROWS, TpchLite  # noqa: E402

SF = 0.1
FIVE_X_BAR = 5.0


def _build_plan(ctx: RheemContext, variant: str, gen: TpchLite,
                tables: dict[str, list]):
    if variant == "q5_engine":
        def mem_source(ctx_, table):
            return ctx_.load_collection(tables[table],
                                        sim_factor=gen.sim_factor(table),
                                        bytes_per_record=ROW_BYTES[table])
        sources = {t: mem_source for t in SF1_ROWS}
        return dataciv.q5_quanta(ctx, SF, sources=sources).to_plan()
    gen.place_for_q5(ctx)
    return dataciv.q5_quanta(ctx, SF, "polystore").to_plan()


def _run_mode(vectorize: bool, variant: str, gen: TpchLite,
              tables: dict[str, list], repeats: int):
    """Best-of-N executor wall seconds plus the (simulated) result."""
    ctx = RheemContext(config={"vectorize": vectorize})
    plan = _build_plan(ctx, variant, gen, tables)
    exec_plan, cards = ctx.optimize(plan)
    result = ctx.executor().execute(exec_plan, estimates=cards)  # warm-up
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = ctx.executor().execute(exec_plan, estimates=cards)
        best = min(best, time.perf_counter() - t0)
    return result, best


def bench_variant(variant: str, gen: TpchLite, tables: dict[str, list],
                  repeats: int) -> dict:
    legacy, legacy_wall = _run_mode(False, variant, gen, tables, repeats)
    vector, vector_wall = _run_mode(True, variant, gen, tables, repeats)
    # The whole point of the refactor: same answer, same simulated
    # runtime, down to the bit — only the real wall clock may differ.
    assert vector.outputs[0] == legacy.outputs[0], (
        f"{variant}: vectorized result differs from the per-record result")
    assert vector.runtime == legacy.runtime, (
        f"{variant}: vectorized simulated runtime differs "
        f"({vector.runtime!r} != {legacy.runtime!r})")
    records = sum(len(rows) for rows in tables.values())
    speedup = legacy_wall / vector_wall
    return {
        "source_records": records,
        "legacy_wall_s": round(legacy_wall, 6),
        "vectorized_wall_s": round(vector_wall, 6),
        "legacy_records_per_s": round(records / legacy_wall),
        "vectorized_records_per_s": round(records / vector_wall),
        "speedup": round(speedup, 3),
        "identical_results": True,
        "identical_sim_runtime": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--actual-scale", type=float, default=50.0,
                        help="multiplier on actual generated rows "
                             "(simulated volumes are unaffected)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_batch_throughput.json")
    args = parser.parse_args(argv)

    gen = TpchLite(SF, actual_scale=args.actual_scale)
    tables = {t: gen.table(t) for t in SF1_ROWS}

    report = {
        "scale_factor": SF,
        "actual_scale": args.actual_scale,
        "repeats": args.repeats,
        "variants": {},
    }
    for variant in ("q5_engine", "q5_polystore_end_to_end"):
        stats = bench_variant(variant, gen, tables, args.repeats)
        report["variants"][variant] = stats
        print(f"{variant}: legacy {stats['legacy_wall_s']:.3f}s "
              f"vectorized {stats['vectorized_wall_s']:.3f}s "
              f"-> {stats['speedup']:.2f}x "
              f"({stats['vectorized_records_per_s']:,} records/s)")

    engine_speedup = report["variants"]["q5_engine"]["speedup"]
    report["five_x_bar"] = FIVE_X_BAR
    report["meets_5x_bar"] = engine_speedup >= FIVE_X_BAR
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["meets_5x_bar"]:
        print(f"FAIL: engine record-throughput speedup {engine_speedup:.2f}x "
              f"is below the {FIVE_X_BAR:.0f}x bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
