#!/usr/bin/env python
"""Self-tuning optimizer: end-to-end gain from online calibration, plus
the beam-enumeration latency bound for very wide plans.

Part one replays the mis-costed-workload scenario the online calibration
loop exists for: a context whose published cost parameters wrongly claim
``pystreams`` is free routes a large skewed WordCount (7.5M simulated
source records) onto the single-threaded platform.  A calibrating
:class:`~repro.server.JobServer` ingests the committed job traces,
refits the cost model with the genetic learner, republishes — and the
next submission replans onto a distributed platform.  The gated metric
is ``calibration_speedup``: simulated runtime before the refit over
simulated runtime after it (the acceptance bar is >= 1.5x; the scenario
delivers ~9x).

Part two times the optimizer on synthetic map-chain plans: a
100-operator plan must optimize in under 5 seconds (the beam engages
above the operator-count threshold), plans below the threshold must be
bit-for-bit identical with the beam compiled out, and ``beam_speedup``
(lossless enumeration wall time over beam wall time on a 60-operator
plan, where both find the same optimum) is gated as a self-normalizing
ratio.

Usage::

    PYTHONPATH=src python scripts/bench_calibration.py [--repeats 3]
        [--out BENCH_calibration.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RheemContext  # noqa: E402
from repro.core.cost import OperatorCostParams  # noqa: E402
from repro.server import JobServer  # noqa: E402

CORPUS = "hdfs://cal/corpus.txt"

MISCOSTED = {f"pystreams.{kind}": OperatorCostParams(0.0, 0.0, 0.0)
             for kind in ("source", "flatmap", "map", "reduceby", "sink")}

WORDCOUNT_DOC = {
    "operators": [
        {"name": "lines", "kind": "textfile_source", "path": CORPUS},
        {"name": "words", "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs", "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"},
    ],
    "sink": {"name": "counts"},
}


def _miscosted_ctx() -> RheemContext:
    ctx = RheemContext(cost_params=dict(MISCOSTED),
                       config={"result_reuse": False})
    ctx.vfs.write(CORPUS, ["a b c d"] * 500, sim_factor=15_000.0)
    return ctx


def _wait_for_refit(server: JobServer, timeout: float = 60.0) -> float:
    start = time.perf_counter()
    deadline = start + timeout
    while time.perf_counter() < deadline:
        if server.snapshot()["calibration"]["refits"] >= 1:
            return time.perf_counter() - start
        time.sleep(0.005)
    raise AssertionError("calibration refit never fired")


def _measure_calibration(repeats: int) -> dict:
    pre, post, refit_waits = [], [], []
    for __ in range(repeats):
        calibration = {"min_samples": 2, "population_size": 24,
                       "generations": 30}
        with JobServer(_miscosted_ctx(), workers=2, tracing=False,
                       calibrate=True, calibration=calibration) as server:
            first = server.submit_sync(WORDCOUNT_DOC, timeout=120)
            assert first["status"] == "ok", first
            assert first["platforms"] == ["pystreams"], \
                "mis-costing failed to reroute the plan"
            second = server.submit_sync(WORDCOUNT_DOC, timeout=120)
            assert second["status"] == "ok", second
            refit_waits.append(_wait_for_refit(server))
            healed = server.submit_sync(WORDCOUNT_DOC, timeout=120)
            assert healed["status"] == "ok", healed
            assert set(healed["platforms"]) & {"sparklite", "flinklite"}, \
                f"refit did not replatform: {healed['platforms']}"
            pre.append(first["runtime"])
            post.append(healed["runtime"])
            counters = server.metrics_snapshot()["counters"]
            assert counters["calibration.refits"] >= 1
    speedup = statistics.median(pre) / statistics.median(post)
    return {
        "pre_refit_runtime_s": statistics.median(pre),
        "post_refit_runtime_s": statistics.median(post),
        "refit_wait_wall_s": statistics.median(refit_waits),
        "calibration_speedup": speedup,
        "meets_1_5x_bar": speedup >= 1.5,
    }


def _chain_plan(ctx: RheemContext, n: int):
    dq = ctx.read_text_file("hdfs://beam/x.txt").map(
        lambda line: line, name="m0")
    for i in range(1, n):
        dq = dq.map(lambda x: x, name=f"m{i}")
    return dq.to_plan()


def _measure_beam(repeats: int) -> dict:
    ctx = RheemContext()
    ctx.vfs.write("hdfs://beam/x.txt", ["a"] * 100, sim_factor=2_000.0)

    def _optimize(n: int, beam: bool) -> tuple[float, float, int]:
        optimizer = ctx.optimizer()
        if not beam:
            optimizer.beam_threshold = None
        plan = _chain_plan(ctx, n)
        start = time.perf_counter()
        best, __ = optimizer.pick_best(plan)
        return (time.perf_counter() - start, best.cost.geometric_mean,
                optimizer.stats["plans_beam_dropped"])

    # Below the threshold the beam must be compiled out: identical cost,
    # zero dropped partials.
    small_beam_s, small_cost, dropped = _optimize(12, beam=True)
    __, small_cost_lossless, ___ = _optimize(12, beam=False)
    assert small_cost == small_cost_lossless and dropped == 0, \
        "beam perturbed a below-threshold plan"

    wide, mid_beam, mid_lossless = [], [], []
    for __ in range(repeats):
        wide_s, ____, wide_dropped = _optimize(100, beam=True)
        assert wide_dropped > 0, "beam never engaged on the 100-op plan"
        assert wide_s < 5.0, \
            f"100-operator plan took {wide_s:.2f}s (bar: 5s)"
        wide.append(wide_s)
        beam_s, beam_cost, ____ = _optimize(60, beam=True)
        lossless_s, lossless_cost, ____ = _optimize(60, beam=False)
        assert beam_cost == lossless_cost, \
            "beam lost the optimum on the 60-op chain"
        mid_beam.append(beam_s)
        mid_lossless.append(lossless_s)

    return {
        "wide_plan_operators": 100,
        "wide_plan_optimize_s": statistics.median(wide),
        "meets_5s_bar": statistics.median(wide) < 5.0,
        "mid_plan_operators": 60,
        "beam_optimize_s": statistics.median(mid_beam),
        "lossless_optimize_s": statistics.median(mid_lossless),
        "beam_speedup": (statistics.median(mid_lossless)
                         / statistics.median(mid_beam)),
        "below_threshold_bit_for_bit": True,  # asserted above
        "beam_matches_lossless_optimum": True,  # asserted per repeat
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_calibration.json")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "calibration",
        "repeats": args.repeats,
        "workload": {
            "job": "wordcount_skewed",
            "simulated_source_records": 7_500_000,
            "miscosted_platform": "pystreams",
        },
        **_measure_calibration(args.repeats),
        "beam": _measure_beam(args.repeats),
    }

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    ok = report["meets_1_5x_bar"] and report["beam"]["meets_5s_bar"]
    print(f"\ncalibration speedup: {report['calibration_speedup']:.1f}x "
          f"(bar 1.5x), 100-op optimize: "
          f"{report['beam']['wide_plan_optimize_s']:.2f}s (bar 5s) "
          f"-> {'OK' if ok else 'BELOW BAR'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
